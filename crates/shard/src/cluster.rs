//! The sharded discrete-event cluster driver.
//!
//! A [`ShardedCluster`] hosts one [`Simulation`] per partition — each with
//! its own nodes, its own advancement [`Coordinator`], its own client, and
//! its own decorrelated RNG streams ([`SimConfig::for_partition`]) — and
//! shuttles cross-partition messages between them through the kernels'
//! partition outboxes. The shuttle is deterministic:
//!
//! 1. find the earliest pending event time `t` across all partitions,
//! 2. run every partition's kernel up to exactly `t`,
//! 3. drain the outboxes in partition order and inject every
//!    cross-partition message into its target kernel at `t + cross_latency`.
//!
//! Because `t` is the *global* minimum, no kernel ever runs past a message
//! another kernel is about to send it: a message emitted at `t` arrives at
//! `t + cross_latency > t`, and every kernel's clock is exactly `t` when
//! the injection happens. Intra-partition delivery (including the fault
//! plane) stays entirely inside each kernel, untouched.
//!
//! With one partition the outbox is always empty and the shuttle reduces
//! to running the single kernel event by event — bit-identical to
//! [`ThreeVCluster`], which the tests below pin.
//!
//! Crash injection is **not supported** in sharded runs: cross-partition
//! resolution pins live in volatile node state and are not yet recovered
//! from the WAL, so a crash could strand a foreign partition's gauge row.
//! Construction rejects configs with scheduled crashes.
//!
//! [`ThreeVCluster`]: threev_core::cluster::ThreeVCluster

use threev_analysis::TxnRecord;
use threev_core::advance::{AdvancementPolicy, AdvancementRecord, Coordinator};
use threev_core::client::Arrival;
use threev_core::cluster::{build_partition_actors, ClusterActor, ClusterConfig, ThreeVConfig};
use threev_core::msg::{Msg, ProtocolMsg};
use threev_core::node::{BackendConfig, DurabilityMode, ThreeVNode};
use threev_model::{NodeId, PartitionId, PlanError, Schema, Topology, TxnId, TxnPlan};
use threev_sim::{SimConfig, SimDuration, SimStats, SimTime, Simulation};

/// Configuration of a sharded cluster.
#[derive(Clone, Debug)]
pub struct ShardedConfig {
    /// Partition layout (also carried into every node's config).
    pub topology: Topology,
    /// Base simulation settings; partition `p` runs under
    /// [`SimConfig::for_partition`]`(p)`.
    pub sim: SimConfig,
    /// Protocol settings, shared by all partitions.
    pub protocol: ThreeVConfig,
    /// Fixed one-way latency of the inter-partition links. Must be
    /// non-zero: a zero-latency cross link would let a message arrive in
    /// the same instant it was sent, breaking the shuttle's "no kernel
    /// runs past an incoming message" argument.
    pub cross_latency: SimDuration,
}

impl ShardedConfig {
    /// Default configuration over `n_partitions` partitions of
    /// `nodes_per_partition` nodes each.
    pub fn new(n_partitions: u16, nodes_per_partition: u16) -> Self {
        ShardedConfig {
            topology: Topology::new(n_partitions, nodes_per_partition),
            sim: SimConfig::default(),
            protocol: ThreeVConfig::default(),
            cross_latency: SimDuration::from_micros(250),
        }
    }

    /// Set the RNG seed (partition 0 uses it verbatim; others derive).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Set the advancement policy of every partition's coordinator.
    #[must_use]
    pub fn advancement(mut self, policy: AdvancementPolicy) -> Self {
        self.protocol.coordinator.policy = policy;
        self
    }

    /// Enable NC3V locking on every node.
    #[must_use]
    pub fn with_locks(mut self) -> Self {
        self.protocol.node.locks_enabled = true;
        self
    }

    /// Set the per-node durability mode.
    #[must_use]
    pub fn durability(mut self, mode: DurabilityMode) -> Self {
        self.protocol.node.durability = mode;
        self
    }

    /// Set the storage backend (mem or paged) for every node in every
    /// partition. Paged nodes write their page files under the configured
    /// directory, one subdirectory per node; crash injection remains
    /// rejected on sharded runs regardless of backend (pins are volatile).
    #[must_use]
    pub fn backend(mut self, backend: BackendConfig) -> Self {
        self.protocol.node.backend = backend;
        self
    }

    /// Set the inter-partition link latency.
    #[must_use]
    pub fn cross_latency(mut self, latency: SimDuration) -> Self {
        self.cross_latency = latency;
        self
    }

    /// The per-partition [`ClusterConfig`] this expands to.
    pub fn cluster_config(&self) -> ClusterConfig {
        ClusterConfig {
            n_nodes: self.topology.nodes_per_partition(),
            sim: self.sim.clone(),
            protocol: self.protocol.clone(),
        }
        .topology(self.topology)
    }
}

/// Why [`ShardedCluster::submit_external`] refused a plan. External
/// submissions come from outside the pre-validated arrival lists (the
/// network front end), so every structural defect is reported instead of
/// asserted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The plan fails [`TxnPlan::validate`] against its declared kind.
    Invalid(PlanError),
    /// A subtransaction names a node id outside the topology's database
    /// nodes (a coordinator, client, gauge, or out-of-range id).
    UnknownNode(NodeId),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Invalid(e) => write!(f, "invalid plan: {e}"),
            SubmitError::UnknownNode(n) => write!(f, "plan visits non-database node {n}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// How a [`ShardedCluster::run`] ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardOutcome {
    /// No partition has pending events or undelivered cross traffic.
    Quiescent(SimTime),
    /// The virtual-time cap was reached with work still pending.
    TimeCapped,
}

/// A sharded 3V cluster: `P` independent partition kernels plus the
/// cross-partition message shuttle.
pub struct ShardedCluster {
    topo: Topology,
    cross_latency: SimDuration,
    sims: Vec<Simulation<ClusterActor>>,
    route_buf: Vec<(NodeId, NodeId, Msg)>,
    cross_messages: u64,
}

impl ShardedCluster {
    /// Build a sharded cluster over the *global* `schema`, with one
    /// arrival stream per partition (`arrivals[p]` is driven by partition
    /// `p`'s client; its plans should be rooted on partition-`p` nodes).
    ///
    /// # Panics
    /// Panics when `arrivals` does not have exactly one entry per
    /// partition, when `cross_latency` is zero, or when the fault plane
    /// schedules node crashes (unsupported in sharded runs, see module
    /// docs) — all static configuration bugs.
    pub fn new(schema: &Schema, cfg: ShardedConfig, arrivals: Vec<Vec<Arrival>>) -> Self {
        let topo = cfg.topology;
        assert_eq!(
            arrivals.len(),
            usize::from(topo.n_partitions()),
            "one arrival stream per partition"
        );
        assert!(
            cfg.cross_latency > SimDuration::ZERO,
            "cross-partition latency must be non-zero"
        );
        assert!(
            cfg.sim.faults.crashes.is_empty(),
            "crash injection is not supported in sharded runs \
             (cross-partition resolution pins are not WAL-recovered)"
        );
        let ccfg = cfg.cluster_config();
        let sims = arrivals
            .into_iter()
            .enumerate()
            .map(|(p, stream)| {
                let pid = PartitionId(p as u16);
                let actors = build_partition_actors(schema, &ccfg, stream, pid);
                Simulation::new_partition(
                    actors,
                    topo.base(pid).0,
                    u16::MAX,
                    cfg.sim.for_partition(p),
                )
            })
            .collect();
        let mut cluster = ShardedCluster {
            topo,
            cross_latency: cfg.cross_latency,
            sims,
            route_buf: Vec::new(),
            cross_messages: 0,
        };
        // Kernels deliver `on_start` lazily on their first run call; prime
        // them here so `earliest_event` sees the initial client timers (and
        // any time-zero cross sends are shuttled) before the first step.
        cluster.step_to(SimTime::ZERO);
        cluster
    }

    /// The partition layout.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Number of partitions.
    pub fn n_partitions(&self) -> u16 {
        self.topo.n_partitions()
    }

    /// Earliest pending event across all partition kernels.
    fn earliest_event(&self) -> Option<SimTime> {
        self.sims.iter().filter_map(Simulation::next_event_at).min()
    }

    /// Run every kernel to exactly `t`, then shuttle the cross-partition
    /// messages that were emitted.
    fn step_to(&mut self, t: SimTime) {
        for sim in &mut self.sims {
            sim.run_until(t);
        }
        let deliver = t + self.cross_latency;
        // Outboxes are drained and injected in partition order, and each
        // kernel assigns injected messages consecutive sequence numbers, so
        // same-instant cross deliveries have a deterministic total order.
        for p in 0..self.sims.len() {
            let mut buf = std::mem::take(&mut self.route_buf);
            self.sims[p].drain_outbox(&mut buf);
            for (from, to, msg) in buf.drain(..) {
                let q = self.topo.partition_of(to).index();
                self.cross_messages += 1;
                self.sims[q].inject_at(deliver, from, to, msg);
            }
            self.route_buf = buf;
        }
    }

    /// Run until every partition is quiescent, or until the virtual-time
    /// cap is reached.
    pub fn run(&mut self, cap: SimTime) -> ShardOutcome {
        loop {
            match self.earliest_event() {
                None => return ShardOutcome::Quiescent(self.now()),
                Some(t) if t > cap => {
                    for sim in &mut self.sims {
                        sim.run_until(cap);
                    }
                    return ShardOutcome::TimeCapped;
                }
                Some(t) => self.step_to(t),
            }
        }
    }

    /// Run all events up to `until` and stop there (mid-run inspection).
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(t) = self.earliest_event() {
            if t > until {
                break;
            }
            self.step_to(t);
        }
        for sim in &mut self.sims {
            sim.run_until(until);
        }
    }

    /// Current virtual time (all kernels agree after any run call).
    pub fn now(&self) -> SimTime {
        self.sims
            .iter()
            .map(Simulation::now)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Is `n` a database node of this topology (not a coordinator, client,
    /// gauge, or out-of-range id)?
    fn is_db_node(&self, n: NodeId) -> bool {
        if threev_model::gauge_peer(n).is_some() {
            return false;
        }
        let p = PartitionId(n.0 / self.topo.stride());
        p.0 < self.topo.n_partitions()
            && n.0 - self.topo.base(p).0 < self.topo.nodes_per_partition()
    }

    /// Submit a transaction from *outside* the arrival lists — the seam
    /// the network front end drives. The plan is validated, registered
    /// with the root partition's client actor (so the completion lands in
    /// a [`TxnRecord`]), and injected as a `Submit` at the current virtual
    /// time. The caller owns the global `seq` counter; id assignment is
    /// `TxnId::new(seq, root_node)`, mirroring what the client actor does
    /// for scheduled arrivals. Run the cluster afterwards to execute it.
    pub fn submit_external(
        &mut self,
        seq: u64,
        plan: &TxnPlan,
        fail_node: Option<NodeId>,
    ) -> Result<TxnId, SubmitError> {
        plan.validate().map_err(SubmitError::Invalid)?;
        for n in plan.root.nodes() {
            if !self.is_db_node(n) {
                return Err(SubmitError::UnknownNode(n));
            }
        }
        let root = plan.root.node;
        let p = self.topo.partition_of(root);
        let client = self.topo.client(p);
        let txn = TxnId::new(seq, root);
        let journal_keys = plan.journal_keys();
        let now = self.now();
        match self.sims[p.index()].actors_mut().last_mut() {
            Some(ClusterActor::Client(c)) => c.register_external(txn, plan.kind, now, journal_keys),
            // lint-allow(panic-hygiene): the client occupies the last
            // actor slot of every partition block by construction — same
            // invariant `partition_records` leans on.
            _ => unreachable!("client occupies the last actor slot of the partition"),
        }
        self.sims[p.index()].inject(
            client,
            root,
            Msg::submit(txn, plan.kind, plan.root.clone(), client, fail_node),
        );
        Ok(txn)
    }

    /// Ask partition `p`'s coordinator for one advancement now.
    pub fn trigger_advancement(&mut self, p: PartitionId) {
        let client = self.topo.client(p);
        let coord = self.topo.coordinator(p);
        self.sims[p.index()].inject(client, coord, Msg::TriggerAdvancement);
    }

    /// Ask every partition's coordinator for one advancement now.
    pub fn trigger_advancement_all(&mut self) {
        for p in 0..self.n_partitions() {
            self.trigger_advancement(PartitionId(p));
        }
    }

    /// Total messages shuttled across partition boundaries so far.
    pub fn cross_messages(&self) -> u64 {
        self.cross_messages
    }

    /// Kernel statistics of partition `p`.
    pub fn sim_stats(&self, p: PartitionId) -> &SimStats {
        self.sims[p.index()].stats()
    }

    /// Transaction records collected by partition `p`'s client, if the
    /// client slot is populated as constructed.
    pub fn try_partition_records(&self, p: PartitionId) -> Option<&[TxnRecord]> {
        match self.sims.get(p.index())?.actors().last()? {
            ClusterActor::Client(c) => Some(c.records()),
            _ => None,
        }
    }

    /// Transaction records collected by partition `p`'s client.
    pub fn partition_records(&self, p: PartitionId) -> &[TxnRecord] {
        // lint-allow(panic-hygiene): the client occupies the last actor
        // slot of every partition block by construction
        // (build_partition_actors); a mismatch is a harness defect, not a
        // reachable protocol state.
        self.try_partition_records(p)
            .expect("client occupies the last actor slot of the partition")
    }

    /// All transaction records, merged across partitions in submission
    /// order (ties broken by partition index).
    pub fn records(&self) -> Vec<TxnRecord> {
        let mut all: Vec<TxnRecord> = Vec::new();
        for p in 0..self.n_partitions() {
            all.extend_from_slice(self.partition_records(PartitionId(p)));
        }
        all.sort_by_key(|r| r.submitted);
        all
    }

    /// The engine of the node with *global* id `id`, if `id` names a
    /// database node of the topology.
    pub fn try_node(&self, id: NodeId) -> Option<&ThreeVNode> {
        let p = self.topo.partition_of(id);
        let local = usize::from(id.0.checked_sub(self.topo.base(p).0)?);
        if local >= usize::from(self.topo.nodes_per_partition()) {
            return None;
        }
        match self.sims.get(p.index())?.actors().get(local)? {
            ClusterActor::Node(n) => Some(n),
            _ => None,
        }
    }

    /// The engine of the node with *global* id `id`.
    pub fn node(&self, id: NodeId) -> &ThreeVNode {
        // lint-allow(panic-hygiene): node slots are fixed at construction;
        // an id outside the topology's node range is a test/bench indexing
        // bug. Fallible callers use `try_node`.
        self.try_node(id).expect("global id names a database node")
    }

    /// Partition `p`'s coordinator, if its slot is populated as
    /// constructed.
    pub fn try_coordinator(&self, p: PartitionId) -> Option<&Coordinator> {
        let slot = usize::from(self.topo.nodes_per_partition());
        match self.sims.get(p.index())?.actors().get(slot)? {
            ClusterActor::Coordinator(c) => Some(c),
            _ => None,
        }
    }

    /// Partition `p`'s coordinator.
    pub fn coordinator(&self, p: PartitionId) -> &Coordinator {
        // lint-allow(panic-hygiene): the coordinator occupies slot k of
        // every partition block by construction.
        self.try_coordinator(p)
            .expect("coordinator occupies actor slot k of the partition")
    }

    /// Completed advancement records of partition `p`.
    pub fn advancements(&self, p: PartitionId) -> &[AdvancementRecord] {
        self.coordinator(p).records()
    }

    /// All global node ids, in partition order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.n_partitions())
            .flat_map(|p| self.topo.nodes(PartitionId(p)))
            .collect()
    }

    /// Are all nodes of all partitions quiescent?
    pub fn all_quiescent(&self) -> bool {
        self.node_ids()
            .iter()
            .all(|&id| self.node(id).is_quiescent())
    }

    /// Highest number of simultaneously live versions of any item on any
    /// node of any partition (the paper's bound: ≤ 3 per partition).
    pub fn max_versions_high_water(&self) -> u32 {
        self.node_ids()
            .iter()
            .map(|&id| self.node(id).store_stats().max_versions_of_any_item)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_analysis::TxnStatus;
    use threev_core::cluster::ThreeVCluster;
    use threev_model::{Key, KeyDecl, SubtxnPlan, TxnPlan, UpdateOp};

    fn ms(x: u64) -> SimTime {
        SimTime(x * 1_000)
    }

    /// One counter + one journal per node, for `n` global nodes.
    fn schema(nodes: &[NodeId]) -> Schema {
        let mut decls = Vec::new();
        for &n in nodes {
            decls.push(KeyDecl::counter(Key(u64::from(n.0)), n, 0));
            decls.push(KeyDecl::journal(Key(1_000 + u64::from(n.0)), n));
        }
        Schema::new(decls)
    }

    fn visit(nodes: &[NodeId], amount: i64) -> TxnPlan {
        let mut root = SubtxnPlan::new(nodes[0])
            .update(Key(u64::from(nodes[0].0)), UpdateOp::Add(amount))
            .update(
                Key(1_000 + u64::from(nodes[0].0)),
                UpdateOp::Append { amount, tag: 1 },
            );
        for &n in &nodes[1..] {
            root = root.child(
                SubtxnPlan::new(n)
                    .update(Key(u64::from(n.0)), UpdateOp::Add(amount))
                    .update(
                        Key(1_000 + u64::from(n.0)),
                        UpdateOp::Append { amount, tag: 1 },
                    ),
            );
        }
        TxnPlan::commuting(root)
    }

    /// Everything observable about a finished run, via Debug canonicalisation.
    fn fingerprint(records: &[TxnRecord], nodes: &[&ThreeVNode], stats: &SimStats) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in records {
            let _ = writeln!(out, "{r:?}");
        }
        for n in nodes {
            let mut keys: Vec<_> = n.store().keys().collect();
            keys.sort_unstable();
            let _ = writeln!(out, "vu={:?} vr={:?}", n.vu(), n.vr());
            for k in keys {
                let _ = writeln!(out, "  {k:?} => {:?}", n.store().layout(k));
            }
        }
        let _ = writeln!(
            out,
            "messages={} timers={} events={}",
            stats.messages, stats.timers, stats.events
        );
        out
    }

    /// With one partition, the sharded driver is bit-identical to the
    /// single-cluster driver: same records, same stores, same kernel
    /// statistics.
    #[test]
    fn single_partition_matches_threev_cluster() {
        let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
        let schema = schema(&nodes);
        let arrivals: Vec<Arrival> = (0..40)
            .map(|i| Arrival::at(ms(1 + i), visit(&nodes, 1)))
            .collect();
        let horizon = SimTime(5_000_000);

        let cfg = ClusterConfig::new(3)
            .seed(42)
            .advancement(AdvancementPolicy::Periodic {
                first: SimDuration::from_millis(10),
                period: SimDuration::from_millis(20),
            });
        let mut single = ThreeVCluster::new(&schema, cfg, arrivals.clone());
        single.run_until(horizon);
        let single_nodes: Vec<&ThreeVNode> = (0..3).map(|i| single.node(i)).collect();
        let single_fp = fingerprint(single.records(), &single_nodes, single.sim_stats());

        let sharded_cfg =
            ShardedConfig::new(1, 3)
                .seed(42)
                .advancement(AdvancementPolicy::Periodic {
                    first: SimDuration::from_millis(10),
                    period: SimDuration::from_millis(20),
                });
        let mut sharded = ShardedCluster::new(&schema, sharded_cfg, vec![arrivals]);
        sharded.run_until(horizon);
        assert!(sharded.topology().is_single());
        assert_eq!(sharded.cross_messages(), 0);
        let sharded_nodes: Vec<&ThreeVNode> = nodes.iter().map(|&id| sharded.node(id)).collect();
        let sharded_fp = fingerprint(
            sharded.partition_records(PartitionId(0)),
            &sharded_nodes,
            sharded.sim_stats(PartitionId(0)),
        );
        assert_eq!(single_fp, sharded_fp, "P=1 sharded run diverged");
    }

    /// A cross-partition commuting tree commits on every partition, the
    /// gauge pins release, and both partitions advance independently.
    #[test]
    fn cross_partition_tree_commits_everywhere() {
        let topo = Topology::new(2, 2);
        let p0 = PartitionId(0);
        let p1 = PartitionId(1);
        let all: Vec<NodeId> = topo.nodes(p0).into_iter().chain(topo.nodes(p1)).collect();
        let schema = schema(&all);
        // Rooted on partition 0, charging one node of each partition.
        let plan = visit(&[topo.nodes(p0)[0], topo.nodes(p1)[1]], 5);
        let arrivals0 = vec![Arrival::at(ms(1), plan)];
        let cfg = ShardedConfig::new(2, 2).seed(7);
        let mut cluster = ShardedCluster::new(&schema, cfg, vec![arrivals0, vec![]]);
        let out = cluster.run(SimTime::MAX);
        assert!(matches!(out, ShardOutcome::Quiescent(_)));
        assert!(cluster.cross_messages() > 0, "tree must cross partitions");
        let recs = cluster.partition_records(p0);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].status, TxnStatus::Committed);
        // Both touched nodes saw the charge.
        for id in [topo.nodes(p0)[0], topo.nodes(p1)[1]] {
            let store = cluster.node(id).store();
            let layout = store.layout(Key(u64::from(id.0)));
            let latest = layout.as_ref().and_then(|l| l.last());
            assert_eq!(
                latest.and_then(|(_, v)| v.as_counter()),
                Some(5),
                "node {id} counter"
            );
        }
        // With the pins released, each partition can advance on its own.
        cluster.trigger_advancement_all();
        let out = cluster.run(SimTime::MAX);
        assert!(matches!(out, ShardOutcome::Quiescent(_)));
        assert_eq!(cluster.advancements(p0).len(), 1);
        assert_eq!(cluster.advancements(p1).len(), 1);
        assert!(cluster.all_quiescent());
    }

    /// An aborted cross-partition tree compensates on every partition: no
    /// partial effects survive anywhere.
    #[test]
    fn cross_partition_abort_leaves_no_trace() {
        let topo = Topology::new(2, 2);
        let p0 = PartitionId(0);
        let p1 = PartitionId(1);
        let all: Vec<NodeId> = topo.nodes(p0).into_iter().chain(topo.nodes(p1)).collect();
        let schema = schema(&all);
        let victim = topo.nodes(p1)[0];
        let targets = [topo.nodes(p0)[0], victim];
        let arrivals0 = vec![
            Arrival::failing_at(ms(1), visit(&targets, 100), victim),
            Arrival::at(ms(2), visit(&targets, 7)),
        ];
        let cfg = ShardedConfig::new(2, 2).seed(11);
        let mut cluster = ShardedCluster::new(&schema, cfg, vec![arrivals0, vec![]]);
        let out = cluster.run(SimTime::MAX);
        assert!(matches!(out, ShardOutcome::Quiescent(_)));
        let recs = cluster.partition_records(p0);
        assert_eq!(recs[0].status, TxnStatus::Aborted);
        assert_eq!(recs[1].status, TxnStatus::Committed);
        for id in targets {
            let store = cluster.node(id).store();
            let layout = store.layout(Key(u64::from(id.0)));
            let latest = layout.as_ref().and_then(|l| l.last());
            assert_eq!(
                latest.and_then(|(_, v)| v.as_counter()),
                Some(7),
                "only the healthy visit survives on node {id}"
            );
        }
        // Counters balanced after compensation: advancement still works.
        cluster.trigger_advancement_all();
        let out = cluster.run(SimTime::MAX);
        assert!(matches!(out, ShardOutcome::Quiescent(_)));
        assert_eq!(cluster.advancements(p0).len(), 1);
        assert_eq!(cluster.advancements(p1).len(), 1);
    }

    /// Partitions with no mutual traffic do not wait on each other: a
    /// partition with local-only traffic advances even while another
    /// partition is idle, and its advancement exchanges no cross traffic.
    #[test]
    fn advancement_is_partition_local_without_cross_traffic() {
        let topo = Topology::new(3, 2);
        let all: Vec<NodeId> = (0..3).flat_map(|p| topo.nodes(PartitionId(p))).collect();
        let schema = schema(&all);
        // Only partition 1 has traffic, strictly local.
        let locals = topo.nodes(PartitionId(1));
        let arrivals1: Vec<Arrival> = (0..10)
            .map(|i| Arrival::at(ms(1 + i), visit(&locals, 1)))
            .collect();
        let cfg = ShardedConfig::new(3, 2).seed(3);
        let mut cluster = ShardedCluster::new(&schema, cfg, vec![vec![], arrivals1, vec![]]);
        let out = cluster.run(SimTime::MAX);
        assert!(matches!(out, ShardOutcome::Quiescent(_)));
        assert_eq!(cluster.cross_messages(), 0, "no cross traffic expected");
        cluster.trigger_advancement(PartitionId(1));
        let out = cluster.run(SimTime::MAX);
        assert!(matches!(out, ShardOutcome::Quiescent(_)));
        assert_eq!(cluster.advancements(PartitionId(1)).len(), 1);
        assert_eq!(
            cluster.cross_messages(),
            0,
            "advancement of a local-only partition must not message peers"
        );
    }

    /// An externally injected plan takes the same path as a scheduled
    /// arrival: same record, same store contents, same commit.
    #[test]
    fn external_submission_matches_arrival_run() {
        let topo = Topology::new(2, 2);
        let all: Vec<NodeId> = (0..2).flat_map(|p| topo.nodes(PartitionId(p))).collect();
        let schema = schema(&all);
        let cross = [topo.nodes(PartitionId(0))[0], topo.nodes(PartitionId(1))[1]];
        let plan = visit(&cross, 9);

        let run_fp = |cluster: &ShardedCluster| {
            use std::fmt::Write as _;
            let mut out = String::new();
            for r in cluster.partition_records(PartitionId(0)) {
                let _ = writeln!(out, "{r:?}");
            }
            for &id in &cross {
                let n = cluster.node(id);
                let mut keys: Vec<_> = n.store().keys().collect();
                keys.sort_unstable();
                for k in keys {
                    let _ = writeln!(out, "{k:?} => {:?}", n.store().layout(k));
                }
            }
            out
        };

        // Path A: the plan rides the arrival list at t=0.
        let cfg = ShardedConfig::new(2, 2).seed(5);
        let arrivals = vec![vec![Arrival::at(SimTime::ZERO, plan.clone())], vec![]];
        let mut via_arrival = ShardedCluster::new(&schema, cfg.clone(), arrivals);
        assert!(matches!(
            via_arrival.run(SimTime::MAX),
            ShardOutcome::Quiescent(_)
        ));

        // Path B: the same plan is injected externally at t=0.
        let mut via_external = ShardedCluster::new(&schema, cfg, vec![vec![], vec![]]);
        let txn = via_external.submit_external(0, &plan, None).unwrap();
        assert_eq!(txn, TxnId::new(0, cross[0]));
        assert!(matches!(
            via_external.run(SimTime::MAX),
            ShardOutcome::Quiescent(_)
        ));

        assert_eq!(run_fp(&via_arrival), run_fp(&via_external));

        // Structural rejections never reach the kernel.
        let empty = TxnPlan::commuting(SubtxnPlan::new(cross[0]));
        assert!(matches!(
            via_external.submit_external(1, &empty, None),
            Err(SubmitError::Invalid(_))
        ));
        let foreign = visit(&[topo.client(PartitionId(0))], 1);
        assert!(matches!(
            via_external.submit_external(1, &foreign, None),
            Err(SubmitError::UnknownNode(_))
        ));
    }

    /// Deterministic replay: same seed, same outcome, across the shuttle.
    #[test]
    fn sharded_replay_is_deterministic() {
        let build = || {
            let topo = Topology::new(2, 2);
            let all: Vec<NodeId> = (0..2).flat_map(|p| topo.nodes(PartitionId(p))).collect();
            let schema = schema(&all);
            let cross = [topo.nodes(PartitionId(0))[0], topo.nodes(PartitionId(1))[0]];
            let arrivals0: Vec<Arrival> = (0..30)
                .map(|i| Arrival::at(ms(1 + i), visit(&cross, 1)))
                .collect();
            let arrivals1: Vec<Arrival> = (0..30)
                .map(|i| Arrival::at(ms(2 + i), visit(&[topo.nodes(PartitionId(1))[1]], 2)))
                .collect();
            let cfg = ShardedConfig::new(2, 2)
                .seed(99)
                .advancement(AdvancementPolicy::Periodic {
                    first: SimDuration::from_millis(7),
                    period: SimDuration::from_millis(13),
                });
            let mut cluster = ShardedCluster::new(&schema, cfg, vec![arrivals0, arrivals1]);
            cluster.run(SimTime(2_000_000));
            (
                cluster.now(),
                cluster.cross_messages(),
                cluster.sim_stats(PartitionId(0)).messages,
                cluster.sim_stats(PartitionId(1)).messages,
                cluster.records().len(),
            )
        };
        assert_eq!(build(), build());
    }
}
