//! Sharding adapter for the hospital workload.
//!
//! [`HospitalWorkload`] writes its plans against *logical department ids*
//! `0..departments`, homing each department's keys on `NodeId(dept)`.
//! [`ShardedHospital`] re-homes that onto a [`Topology`] block layout: a
//! [`KeyRangeRouter`] over the department space assigns each department to
//! a partition, departments map to global node ids, and every plan is
//! rewritten through [`TxnPlan::map_nodes`]. Keys are untouched — the key
//! already encodes the department, and the schema is remapped with the
//! same function, so every key stays homed with its department's node.
//!
//! Arrivals are split per partition by the *root* department: partition
//! `p`'s client submits exactly the transactions rooted on its nodes.
//! Transaction ids stay globally unique because the client derives them
//! from `(sequence, root node)` and roots are partition-local.
//!
//! The `confine_to_root_partition` knob prunes subtransactions that would
//! land on foreign partitions, yielding a *disjoint-keys* workload: same
//! arrival process, zero cross-partition traffic. The scaling benchmark
//! uses it to show per-partition advancement cost independent of cluster
//! size.
//!
//! [`TxnPlan::map_nodes`]: threev_model::TxnPlan::map_nodes

use threev_core::client::Arrival;
use threev_model::{NodeId, PartitionId, Schema, SubtxnPlan, Topology, TxnPlan};
use threev_workload::HospitalWorkload;

use crate::router::KeyRangeRouter;

/// A hospital workload spread over the partitions of a [`Topology`].
#[derive(Clone, Debug)]
pub struct ShardedHospital {
    /// The underlying workload, written against logical department ids.
    pub base: HospitalWorkload,
    /// The partition layout the departments are spread over.
    pub topology: Topology,
    /// Drop subtransactions landing outside the root's partition,
    /// producing partition-disjoint traffic (see module docs).
    pub confine_to_root_partition: bool,
}

impl ShardedHospital {
    /// Spread `base` over `topology`.
    ///
    /// # Panics
    /// Panics unless the workload has exactly one department per database
    /// node (`departments == n_partitions * nodes_per_partition`) — the
    /// layout this adapter implements.
    pub fn new(base: HospitalWorkload, topology: Topology) -> Self {
        let nodes = topology.n_partitions() * topology.nodes_per_partition();
        assert_eq!(
            base.departments, nodes,
            "workload must have one department per node ({nodes}), got {}",
            base.departments
        );
        ShardedHospital {
            base,
            topology,
            confine_to_root_partition: false,
        }
    }

    /// Confine every transaction to its root's partition (builder style).
    #[must_use]
    pub fn confined(mut self) -> Self {
        self.confine_to_root_partition = true;
        self
    }

    /// The department-space router this layout implies: uniform contiguous
    /// ranges, `nodes_per_partition` departments each.
    pub fn router(&self) -> KeyRangeRouter {
        KeyRangeRouter::uniform(
            self.topology.n_partitions(),
            u64::from(self.base.departments),
        )
    }

    /// Global node id of logical department `dept`.
    pub fn global_node(&self, dept: NodeId) -> NodeId {
        let router = self.router();
        let p = router.partition_of(u64::from(dept.0));
        let (lo, _) = router.range(p);
        let local = u64::from(dept.0) - lo;
        NodeId(self.topology.base(p).0 + local as u16)
    }

    /// The global schema: the base workload's keys, re-homed onto global
    /// node ids.
    pub fn schema(&self) -> Schema {
        let base = self.base.schema();
        Schema::new(
            base.decls()
                .iter()
                .map(|d| {
                    let mut d = d.clone();
                    d.node = self.global_node(d.node);
                    d
                })
                .collect(),
        )
    }

    /// Arrival streams, one per partition, bucketed by root partition.
    pub fn arrivals(&self) -> Vec<Vec<Arrival>> {
        let mut per_partition: Vec<Vec<Arrival>> = (0..self.topology.n_partitions())
            .map(|_| Vec::new())
            .collect();
        for mut a in self.base.arrivals() {
            let mut plan = a.plan.map_nodes(&mut |n| self.global_node(n));
            let root_p = self.topology.partition_of(plan.root.node);
            if self.confine_to_root_partition {
                plan = TxnPlan {
                    kind: plan.kind,
                    root: prune_foreign(&plan.root, &self.topology, root_p),
                };
            }
            a.fail_node = a
                .fail_node
                .map(|n| self.global_node(n))
                .filter(|n| plan.root.nodes().contains(n));
            a.plan = plan;
            per_partition[root_p.index()].push(a);
        }
        per_partition
    }
}

/// Clone `plan`'s subtree, dropping every child whose subtree root lies
/// outside partition `p`.
fn prune_foreign(plan: &SubtxnPlan, topo: &Topology, p: PartitionId) -> SubtxnPlan {
    SubtxnPlan {
        node: plan.node,
        steps: plan.steps.clone(),
        children: plan
            .children
            .iter()
            .filter(|c| topo.partition_of(c.node) == p)
            .map(|c| prune_foreign(c, topo, p))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_sim::SimDuration;

    fn base(departments: u16) -> HospitalWorkload {
        HospitalWorkload {
            departments,
            patients: 10,
            rate_tps: 1_000.0,
            read_pct: 20,
            max_fanout: 3,
            duration: SimDuration::from_millis(100),
            zipf_s: 0.9,
            seed: 5,
        }
    }

    #[test]
    fn schema_is_rehomed_but_keys_are_unchanged() {
        let topo = Topology::new(2, 3);
        let sharded = ShardedHospital::new(base(6), topo);
        let flat = base(6).schema();
        let global = sharded.schema();
        assert_eq!(flat.len(), global.len());
        for d in flat.decls() {
            let g = global.decl(d.key).expect("key survives re-homing");
            assert_eq!(g.node, sharded.global_node(d.node));
            assert_eq!(g.kind, d.kind);
            assert_eq!(g.init, d.init);
        }
        // Departments 0..2 land on partition 0's block, 3..5 on partition 1's.
        assert_eq!(sharded.global_node(NodeId(0)), NodeId(0));
        assert_eq!(sharded.global_node(NodeId(2)), NodeId(2));
        assert_eq!(sharded.global_node(NodeId(3)), topo.base(PartitionId(1)));
        assert_eq!(
            sharded.global_node(NodeId(5)),
            NodeId(topo.base(PartitionId(1)).0 + 2)
        );
    }

    #[test]
    fn arrivals_are_bucketed_by_root_partition() {
        let topo = Topology::new(2, 3);
        let sharded = ShardedHospital::new(base(6), topo);
        let streams = sharded.arrivals();
        assert_eq!(streams.len(), 2);
        let total: usize = streams.iter().map(Vec::len).sum();
        assert_eq!(total, base(6).arrivals().len());
        assert!(total > 0, "workload produced no arrivals");
        for (p, stream) in streams.iter().enumerate() {
            for a in stream {
                assert_eq!(
                    topo.partition_of(a.plan.root.node).index(),
                    p,
                    "root must live on the submitting partition"
                );
            }
        }
    }

    #[test]
    fn confined_arrivals_never_leave_their_partition() {
        let topo = Topology::new(3, 2);
        let sharded = ShardedHospital::new(base(6), topo).confined();
        for (p, stream) in sharded.arrivals().iter().enumerate() {
            for a in stream {
                for n in a.plan.root.nodes() {
                    assert_eq!(
                        topo.partition_of(n).index(),
                        p,
                        "confined plan reached a foreign node"
                    );
                }
                if let Some(f) = a.fail_node {
                    assert!(a.plan.root.nodes().contains(&f));
                }
            }
        }
    }

    #[test]
    fn unconfined_arrivals_do_cross_partitions() {
        let topo = Topology::new(3, 2);
        let sharded = ShardedHospital::new(base(6), topo);
        let crossers = sharded
            .arrivals()
            .iter()
            .flatten()
            .filter(|a| {
                let root_p = topo.partition_of(a.plan.root.node);
                a.plan
                    .root
                    .nodes()
                    .iter()
                    .any(|&n| topo.partition_of(n) != root_p)
            })
            .count();
        assert!(crossers > 0, "expected some cross-partition trees");
    }
}
