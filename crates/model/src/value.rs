//! Value types of a data recording system (paper §6).
//!
//! A data recording system "records data by inserting new data observations
//! into a database, and simultaneously updates summaries … derived from the
//! recorded data". We model exactly that:
//!
//! * [`Value::Counter`] — a summary (account balance, items sold, …) updated
//!   by commuting increments;
//! * [`Value::Journal`] — the recorded observations themselves (charges,
//!   calls, sales), updated by commuting appends. Every entry is tagged with
//!   the writing transaction, which is what lets `threev-analysis` audit
//!   global serializability *exactly* (Theorem 4.1);
//! * [`Value::Register`] — a plain overwritable cell used by *non-commuting*
//!   transactions (paper §5, NC3V).

use std::fmt;

use crate::ids::TxnId;

/// One recorded observation in a journal.
///
/// The journal is semantically a *set* of entries: appends commute, so no
/// meaning may be attached to entry order. The auditor compares journals as
/// sets of `(txn, amount, tag)` triples.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JournalEntry {
    /// Transaction that recorded the observation.
    pub txn: TxnId,
    /// Observation payload (e.g. a charge amount in cents).
    pub amount: i64,
    /// Application tag (e.g. procedure code / call type).
    pub tag: u32,
}

/// A value stored under one version of one key.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Value {
    /// Summary counter; supports commuting [`crate::ops::UpdateOp::Add`].
    Counter(i64),
    /// Observation journal; supports commuting [`crate::ops::UpdateOp::Append`].
    Journal(Vec<JournalEntry>),
    /// Overwritable register; supports non-commuting
    /// [`crate::ops::UpdateOp::Assign`].
    Register(i64),
}

/// The kind of a [`Value`], used for schema validation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValueKind {
    /// See [`Value::Counter`].
    Counter,
    /// See [`Value::Journal`].
    Journal,
    /// See [`Value::Register`].
    Register,
}

impl Value {
    /// Kind of this value.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Counter(_) => ValueKind::Counter,
            Value::Journal(_) => ValueKind::Journal,
            Value::Register(_) => ValueKind::Register,
        }
    }

    /// Zero/empty value of the given kind.
    pub fn empty(kind: ValueKind) -> Value {
        match kind {
            ValueKind::Counter => Value::Counter(0),
            ValueKind::Journal => Value::Journal(Vec::new()),
            ValueKind::Register => Value::Register(0),
        }
    }

    /// Counter payload, if this is a counter.
    pub fn as_counter(&self) -> Option<i64> {
        match self {
            Value::Counter(c) => Some(*c),
            _ => None,
        }
    }

    /// Register payload, if this is a register.
    pub fn as_register(&self) -> Option<i64> {
        match self {
            Value::Register(r) => Some(*r),
            _ => None,
        }
    }

    /// Journal entries, if this is a journal.
    pub fn as_journal(&self) -> Option<&[JournalEntry]> {
        match self {
            Value::Journal(j) => Some(j),
            _ => None,
        }
    }

    /// Set of transactions that contributed entries, if this is a journal.
    pub fn journal_txns(&self) -> Option<Vec<TxnId>> {
        self.as_journal().map(|j| {
            let mut v: Vec<TxnId> = j.iter().map(|e| e.txn).collect();
            v.sort_unstable();
            v.dedup();
            v
        })
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Counter(c) => write!(f, "ctr({c})"),
            Value::Journal(j) => write!(f, "jrn(len={})", j.len()),
            Value::Register(r) => write!(f, "reg({r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    fn e(seq: u64, amount: i64) -> JournalEntry {
        JournalEntry {
            txn: TxnId::new(seq, NodeId(0)),
            amount,
            tag: 0,
        }
    }

    #[test]
    fn kinds_round_trip() {
        for kind in [ValueKind::Counter, ValueKind::Journal, ValueKind::Register] {
            assert_eq!(Value::empty(kind).kind(), kind);
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Counter(5).as_counter(), Some(5));
        assert_eq!(Value::Counter(5).as_register(), None);
        assert_eq!(Value::Register(7).as_register(), Some(7));
        let j = Value::Journal(vec![e(2, 10), e(1, 20), e(2, 30)]);
        assert_eq!(j.as_journal().unwrap().len(), 3);
        let txns = j.journal_txns().unwrap();
        assert_eq!(txns.len(), 2);
        assert!(txns[0] < txns[1]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Counter(1).to_string(), "ctr(1)");
        assert_eq!(Value::Journal(vec![]).to_string(), "jrn(len=0)");
        assert_eq!(Value::Register(-2).to_string(), "reg(-2)");
    }
}
