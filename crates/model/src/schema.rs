//! Static data placement: which key lives on which node, with what kind and
//! initial value.
//!
//! The paper's setting fragments data amongst several databases (§1); each
//! data item has exactly one home node. The schema is fixed for the duration
//! of a run and shared by every engine, the workload generators, and the
//! auditor.

use std::collections::BTreeMap;

use crate::ids::{Key, NodeId};
use crate::value::{Value, ValueKind};

/// Declaration of one data item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyDecl {
    /// The key.
    pub key: Key,
    /// Home node.
    pub node: NodeId,
    /// Kind of value stored under the key.
    pub kind: ValueKind,
    /// Initial (version-0) value.
    pub init: Value,
}

impl KeyDecl {
    /// Declare a counter key starting at `init`.
    pub fn counter(key: Key, node: NodeId, init: i64) -> Self {
        KeyDecl {
            key,
            node,
            kind: ValueKind::Counter,
            init: Value::Counter(init),
        }
    }

    /// Declare an empty journal key.
    pub fn journal(key: Key, node: NodeId) -> Self {
        KeyDecl {
            key,
            node,
            kind: ValueKind::Journal,
            init: Value::Journal(Vec::new()),
        }
    }

    /// Declare a register key starting at `init`.
    pub fn register(key: Key, node: NodeId, init: i64) -> Self {
        KeyDecl {
            key,
            node,
            kind: ValueKind::Register,
            init: Value::Register(init),
        }
    }
}

/// The full database schema: every key, its home node, and its initial value.
#[derive(Clone, Debug, Default)]
pub struct Schema {
    decls: Vec<KeyDecl>,
    by_key: BTreeMap<Key, usize>,
    n_nodes: u16,
}

impl Schema {
    /// Build a schema from declarations.
    ///
    /// # Panics
    /// Panics on duplicate keys — a schema bug that should fail fast.
    pub fn new(decls: Vec<KeyDecl>) -> Self {
        let mut by_key = BTreeMap::new();
        let mut n_nodes = 0u16;
        for (i, d) in decls.iter().enumerate() {
            assert!(
                by_key.insert(d.key, i).is_none(),
                "duplicate key {} in schema",
                d.key
            );
            n_nodes = n_nodes.max(d.node.0 + 1);
        }
        Schema {
            decls,
            by_key,
            n_nodes,
        }
    }

    /// Number of nodes (max declared node index + 1).
    pub fn n_nodes(&self) -> u16 {
        self.n_nodes
    }

    /// All declarations.
    pub fn decls(&self) -> &[KeyDecl] {
        &self.decls
    }

    /// Declaration of `key`, if any.
    pub fn decl(&self, key: Key) -> Option<&KeyDecl> {
        self.by_key.get(&key).map(|&i| &self.decls[i])
    }

    /// Home node of `key`, if declared.
    pub fn home(&self, key: Key) -> Option<NodeId> {
        self.decl(key).map(|d| d.node)
    }

    /// All declarations homed on `node`.
    pub fn keys_on(&self, node: NodeId) -> impl Iterator<Item = &KeyDecl> {
        self.decls.iter().filter(move |d| d.node == node)
    }

    /// Number of declared keys.
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_home() {
        let s = Schema::new(vec![
            KeyDecl::counter(Key(1), NodeId(0), 5),
            KeyDecl::journal(Key(2), NodeId(1)),
            KeyDecl::register(Key(3), NodeId(2), -1),
        ]);
        assert_eq!(s.n_nodes(), 3);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.home(Key(2)), Some(NodeId(1)));
        assert_eq!(s.home(Key(9)), None);
        assert_eq!(s.decl(Key(1)).unwrap().init, Value::Counter(5));
        assert_eq!(s.decl(Key(3)).unwrap().kind, ValueKind::Register);
        assert_eq!(s.keys_on(NodeId(1)).count(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate key")]
    fn duplicate_keys_panic() {
        Schema::new(vec![
            KeyDecl::counter(Key(1), NodeId(0), 0),
            KeyDecl::counter(Key(1), NodeId(1), 0),
        ]);
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.n_nodes(), 0);
    }
}
