//! Update operations and their commutativity relation (paper §3.1).
//!
//! The paper requires that update *subtransactions* commute; it does not
//! require individual operations to commute (Example 3.1). We nevertheless
//! choose operation vocabularies whose pairwise commutativity is easy to
//! classify, because the engines use [`UpdateOp::commutes_with`] both to
//! validate workloads and to decide the lock mode in NC3V:
//!
//! * [`UpdateOp::Add`] — increment a summary counter ("increment total charge
//!   due", §1);
//! * [`UpdateOp::Append`] — record an observation in a journal ("record the
//!   procedure done and charge applied", §1);
//! * [`UpdateOp::Retract`] — remove an observation previously appended *by
//!   the same transaction*; this is the compensating form of `Append`
//!   (paper §3.2: compensating subtransactions are ordinary members of the
//!   transaction tree and must commute with all well-behaved subtransactions);
//! * [`UpdateOp::Assign`] — overwrite a register; the canonical
//!   *non-commuting* operation used by NC3V transactions (paper §5).

use std::fmt;

use crate::ids::TxnId;
use crate::value::{JournalEntry, Value, ValueKind};

/// A single update operation inside a subtransaction plan.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UpdateOp {
    /// Add `delta` to a [`Value::Counter`]. Commutes with every op except
    /// [`UpdateOp::Assign`].
    Add(i64),
    /// Append an observation `(amount, tag)` to a [`Value::Journal`]; the
    /// executing engine stamps the entry with the writing transaction's id.
    Append {
        /// Observation payload.
        amount: i64,
        /// Application tag.
        tag: u32,
    },
    /// Remove one entry `(amount, tag)` previously appended by the *same*
    /// transaction. Commutes with other transactions' operations because it
    /// only touches the issuing transaction's own entries.
    Retract {
        /// Payload of the entry to remove.
        amount: i64,
        /// Tag of the entry to remove.
        tag: u32,
    },
    /// Overwrite a [`Value::Register`]. Does not commute with anything,
    /// including another `Assign`.
    Assign(i64),
}

/// Error applying an [`UpdateOp`] to a [`Value`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ApplyError {
    /// Operation and value kind do not match (schema violation).
    TypeMismatch {
        /// Kind of the stored value.
        value: ValueKind,
    },
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::TypeMismatch { value } => {
                write!(f, "update op does not apply to value of kind {value:?}")
            }
        }
    }
}

impl std::error::Error for ApplyError {}

impl UpdateOp {
    /// Is this operation commuting (well-behaved, paper Def. 3.1)?
    #[inline]
    pub fn is_commuting(self) -> bool {
        !matches!(self, UpdateOp::Assign(_))
    }

    /// Pairwise commutativity relation used by workload validation and by
    /// the NC3V lock-mode choice: commute locks for commuting ops, exclusive
    /// non-commute locks for `Assign`.
    #[inline]
    pub fn commutes_with(self, other: UpdateOp) -> bool {
        self.is_commuting() && other.is_commuting()
    }

    /// Value kind this operation applies to.
    pub fn applies_to(self) -> ValueKind {
        match self {
            UpdateOp::Add(_) => ValueKind::Counter,
            UpdateOp::Append { .. } | UpdateOp::Retract { .. } => ValueKind::Journal,
            UpdateOp::Assign(_) => ValueKind::Register,
        }
    }

    /// Apply this operation, as transaction `txn`, to `value` in place.
    ///
    /// `Retract` removes at most one matching own entry and is a no-op when
    /// none exists (the compensating subtransaction may arrive before the
    /// original executed; the protocol layer handles that race with
    /// tombstones, and the storage layer stays idempotent-friendly).
    pub fn apply(self, value: &mut Value, txn: TxnId) -> Result<(), ApplyError> {
        match (self, value) {
            (UpdateOp::Add(delta), Value::Counter(c)) => {
                *c = c.wrapping_add(delta);
                Ok(())
            }
            (UpdateOp::Append { amount, tag }, Value::Journal(j)) => {
                j.push(JournalEntry { txn, amount, tag });
                Ok(())
            }
            (UpdateOp::Retract { amount, tag }, Value::Journal(j)) => {
                if let Some(pos) = j
                    .iter()
                    .position(|e| e.txn == txn && e.amount == amount && e.tag == tag)
                {
                    j.swap_remove(pos);
                }
                Ok(())
            }
            (UpdateOp::Assign(x), Value::Register(r)) => {
                *r = x;
                Ok(())
            }
            (_, value) => Err(ApplyError::TypeMismatch {
                value: value.kind(),
            }),
        }
    }

    /// The compensating operation that undoes this one (paper §3.2).
    ///
    /// For `Assign` the caller must supply the value read back before the
    /// overwrite (`prior`); for the commuting ops no prior state is needed —
    /// which is precisely why compensation of well-behaved transactions
    /// needs no coordination.
    pub fn compensation(self, prior: Option<&Value>) -> UpdateOp {
        match self {
            UpdateOp::Add(d) => UpdateOp::Add(-d),
            UpdateOp::Append { amount, tag } => UpdateOp::Retract { amount, tag },
            UpdateOp::Retract { amount, tag } => UpdateOp::Append { amount, tag },
            UpdateOp::Assign(_) => {
                let restored = prior.and_then(Value::as_register).unwrap_or(0);
                UpdateOp::Assign(restored)
            }
        }
    }
}

impl fmt::Display for UpdateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateOp::Add(d) => write!(f, "add({d})"),
            UpdateOp::Append { amount, tag } => write!(f, "append({amount},#{tag})"),
            UpdateOp::Retract { amount, tag } => write!(f, "retract({amount},#{tag})"),
            UpdateOp::Assign(x) => write!(f, "assign({x})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    fn t(seq: u64) -> TxnId {
        TxnId::new(seq, NodeId(0))
    }

    #[test]
    fn add_applies_to_counter() {
        let mut v = Value::Counter(10);
        UpdateOp::Add(5).apply(&mut v, t(1)).unwrap();
        assert_eq!(v, Value::Counter(15));
        UpdateOp::Add(-20).apply(&mut v, t(1)).unwrap();
        assert_eq!(v, Value::Counter(-5));
    }

    #[test]
    fn append_then_retract_is_identity() {
        let mut v = Value::Journal(vec![]);
        UpdateOp::Append { amount: 7, tag: 3 }
            .apply(&mut v, t(1))
            .unwrap();
        assert_eq!(v.as_journal().unwrap().len(), 1);
        UpdateOp::Retract { amount: 7, tag: 3 }
            .apply(&mut v, t(1))
            .unwrap();
        assert_eq!(v, Value::Journal(vec![]));
    }

    #[test]
    fn retract_only_removes_own_entries() {
        let mut v = Value::Journal(vec![]);
        UpdateOp::Append { amount: 7, tag: 3 }
            .apply(&mut v, t(1))
            .unwrap();
        UpdateOp::Retract { amount: 7, tag: 3 }
            .apply(&mut v, t(2))
            .unwrap();
        assert_eq!(
            v.as_journal().unwrap().len(),
            1,
            "other txn's entry survives"
        );
    }

    #[test]
    fn retract_missing_is_noop() {
        let mut v = Value::Journal(vec![]);
        UpdateOp::Retract { amount: 1, tag: 1 }
            .apply(&mut v, t(1))
            .unwrap();
        assert_eq!(v, Value::Journal(vec![]));
    }

    #[test]
    fn assign_applies_to_register() {
        let mut v = Value::Register(1);
        UpdateOp::Assign(9).apply(&mut v, t(1)).unwrap();
        assert_eq!(v, Value::Register(9));
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let mut v = Value::Counter(0);
        let err = UpdateOp::Assign(1).apply(&mut v, t(1)).unwrap_err();
        assert_eq!(
            err,
            ApplyError::TypeMismatch {
                value: ValueKind::Counter
            }
        );
        assert!(err.to_string().contains("Counter"));
    }

    #[test]
    fn commutativity_matrix() {
        let add = UpdateOp::Add(1);
        let app = UpdateOp::Append { amount: 1, tag: 0 };
        let ret = UpdateOp::Retract { amount: 1, tag: 0 };
        let asg = UpdateOp::Assign(1);
        for a in [add, app, ret] {
            for b in [add, app, ret] {
                assert!(a.commutes_with(b), "{a} should commute with {b}");
            }
            assert!(!a.commutes_with(asg));
            assert!(!asg.commutes_with(a));
        }
        assert!(!asg.commutes_with(asg));
    }

    #[test]
    fn compensation_forms() {
        assert_eq!(UpdateOp::Add(4).compensation(None), UpdateOp::Add(-4));
        assert_eq!(
            UpdateOp::Append { amount: 2, tag: 9 }.compensation(None),
            UpdateOp::Retract { amount: 2, tag: 9 }
        );
        assert_eq!(
            UpdateOp::Retract { amount: 2, tag: 9 }.compensation(None),
            UpdateOp::Append { amount: 2, tag: 9 }
        );
        assert_eq!(
            UpdateOp::Assign(5).compensation(Some(&Value::Register(11))),
            UpdateOp::Assign(11)
        );
        assert_eq!(UpdateOp::Assign(5).compensation(None), UpdateOp::Assign(0));
    }

    #[test]
    fn applies_to_kinds() {
        assert_eq!(UpdateOp::Add(1).applies_to(), ValueKind::Counter);
        assert_eq!(
            UpdateOp::Append { amount: 1, tag: 0 }.applies_to(),
            ValueKind::Journal
        );
        assert_eq!(UpdateOp::Assign(1).applies_to(), ValueKind::Register);
    }

    #[test]
    fn compensation_round_trip_property() {
        // add/append compensation restores the original value regardless of
        // interleaved foreign ops — the commuting property in action.
        let mut v = Value::Counter(100);
        let op = UpdateOp::Add(37);
        op.apply(&mut v, t(1)).unwrap();
        UpdateOp::Add(5).apply(&mut v, t(2)).unwrap(); // foreign op interleaved
        op.compensation(None).apply(&mut v, t(1)).unwrap();
        assert_eq!(v, Value::Counter(105));
    }
}
