//! Partition topology for sharded clusters.
//!
//! The paper's counter scheme (§2.2) is per *node pair*; scaled out, a
//! partition tracking every node in the cluster would make advancement
//! cost grow with cluster size. Instead (following the partial-replication
//! idea of Sutra & Shapiro), cross-partition traffic is accounted **per
//! peer partition**: a pair of sender-local gauge rows keyed by a reserved
//! [`NodeId`] stands in for the remote partition, so a partition's
//! advancement only ever waits on peers it actually exchanged
//! subtransactions with — the communication graph, not the cluster.
//!
//! [`Topology`] fixes the global actor-id layout of a sharded run: each
//! partition owns a contiguous id block of `nodes_per_partition + 2`
//! actors — its database nodes, then its advancement coordinator, then its
//! client. [`Topology::single`] is the degenerate one-partition layout
//! every pre-sharding construction implicitly used; with it, every id maps
//! to partition 0 and nothing about the single-cluster code path changes.

use std::fmt;

use crate::ids::NodeId;

/// Identifier of one partition of a sharded cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PartitionId(pub u16);

impl PartitionId {
    /// Index into dense per-partition arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// First [`NodeId`] of the reserved *gauge* range: `GAUGE_BASE + p` stands
/// for peer partition `p` in a node's counter tables. Gauge ids are pure
/// accounting keys — no actor ever has one, and the transport never routes
/// to one. Keeping them inside the ordinary `NodeId` space lets the
/// cross-partition rows ride the existing counter snapshots, WAL records,
/// and checkpoints without a second counter representation.
pub const GAUGE_BASE: u16 = 0xFF00;

/// The gauge [`NodeId`] standing for peer partition `p` in counter tables.
#[inline]
pub fn gauge_node(p: PartitionId) -> NodeId {
    NodeId(GAUGE_BASE + p.0)
}

/// If `n` is a gauge id, the peer partition it stands for.
#[inline]
pub fn gauge_peer(n: NodeId) -> Option<PartitionId> {
    (n.0 >= GAUGE_BASE).then(|| PartitionId(n.0 - GAUGE_BASE))
}

/// The global actor-id layout of a sharded cluster.
///
/// Partition `p` owns ids `[p·stride, (p+1)·stride)` where
/// `stride = nodes_per_partition + 2`: first its database nodes, then its
/// coordinator, then its client. All layout questions — which partition an
/// id belongs to, whether two ids are partition-local to each other —
/// answer from this one struct, so every layer agrees on the mapping.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Topology {
    n_partitions: u16,
    nodes_per_partition: u16,
}

impl Default for Topology {
    fn default() -> Self {
        Topology::single()
    }
}

impl Topology {
    /// The degenerate one-partition topology: every id is partition 0 and
    /// every pair of ids is partition-local. This is the implicit topology
    /// of every non-sharded construction, so defaulting to it keeps the
    /// single-cluster code paths bit-identical.
    pub fn single() -> Self {
        Topology {
            n_partitions: 1,
            nodes_per_partition: 0,
        }
    }

    /// Layout for `n_partitions` partitions of `nodes_per_partition`
    /// database nodes each.
    pub fn new(n_partitions: u16, nodes_per_partition: u16) -> Self {
        assert!(n_partitions >= 1, "at least one partition");
        assert!(nodes_per_partition >= 1, "at least one node per partition");
        let stride = nodes_per_partition as u32 + 2;
        assert!(
            n_partitions as u32 * stride <= GAUGE_BASE as u32,
            "id space exhausted: {n_partitions} partitions x stride {stride} \
             collides with the gauge range at {GAUGE_BASE:#x}"
        );
        Topology {
            n_partitions,
            nodes_per_partition,
        }
    }

    /// Number of partitions.
    #[inline]
    pub fn n_partitions(&self) -> u16 {
        self.n_partitions
    }

    /// Database nodes per partition (0 for the degenerate single layout,
    /// which never consults it).
    #[inline]
    pub fn nodes_per_partition(&self) -> u16 {
        self.nodes_per_partition
    }

    /// Actor ids per partition block (nodes + coordinator + client).
    #[inline]
    pub fn stride(&self) -> u16 {
        self.nodes_per_partition + 2
    }

    /// Is this the degenerate single-partition layout?
    #[inline]
    pub fn is_single(&self) -> bool {
        self.n_partitions == 1
    }

    /// Partition owning actor id `n`.
    #[inline]
    pub fn partition_of(&self, n: NodeId) -> PartitionId {
        if self.is_single() {
            return PartitionId(0);
        }
        debug_assert!(n.0 < GAUGE_BASE, "gauge ids have no partition");
        PartitionId(n.0 / self.stride())
    }

    /// Are `a` and `b` hosted by the same partition?
    #[inline]
    pub fn same_partition(&self, a: NodeId, b: NodeId) -> bool {
        self.is_single() || self.partition_of(a) == self.partition_of(b)
    }

    /// First actor id of partition `p`'s block.
    #[inline]
    pub fn base(&self, p: PartitionId) -> NodeId {
        NodeId(p.0 * self.stride())
    }

    /// The database-node ids of partition `p`.
    pub fn nodes(&self, p: PartitionId) -> Vec<NodeId> {
        let base = self.base(p).0;
        (base..base + self.nodes_per_partition)
            .map(NodeId)
            .collect()
    }

    /// Partition `p`'s advancement coordinator id.
    #[inline]
    pub fn coordinator(&self, p: PartitionId) -> NodeId {
        NodeId(self.base(p).0 + self.nodes_per_partition)
    }

    /// Partition `p`'s client id.
    #[inline]
    pub fn client(&self, p: PartitionId) -> NodeId {
        NodeId(self.base(p).0 + self.nodes_per_partition + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_topology_is_all_partition_zero() {
        let t = Topology::single();
        assert!(t.is_single());
        assert_eq!(t.partition_of(NodeId(0)), PartitionId(0));
        assert_eq!(t.partition_of(NodeId(9_999)), PartitionId(0));
        assert!(t.same_partition(NodeId(3), NodeId(7_000)));
        assert_eq!(Topology::default(), t);
    }

    #[test]
    fn block_layout() {
        let t = Topology::new(4, 3);
        assert_eq!(t.stride(), 5);
        assert_eq!(t.base(PartitionId(2)), NodeId(10));
        assert_eq!(
            t.nodes(PartitionId(2)),
            vec![NodeId(10), NodeId(11), NodeId(12)]
        );
        assert_eq!(t.coordinator(PartitionId(2)), NodeId(13));
        assert_eq!(t.client(PartitionId(2)), NodeId(14));
        assert_eq!(t.partition_of(NodeId(14)), PartitionId(2));
        assert_eq!(t.partition_of(NodeId(4)), PartitionId(0));
        assert!(t.same_partition(NodeId(10), NodeId(14)));
        assert!(!t.same_partition(NodeId(9), NodeId(10)));
    }

    #[test]
    fn gauge_ids_round_trip_and_stay_clear_of_real_ids() {
        let p = PartitionId(7);
        let g = gauge_node(p);
        assert_eq!(gauge_peer(g), Some(p));
        assert_eq!(gauge_peer(NodeId(500)), None);
        // The largest permitted layout still clears the gauge range.
        let t = Topology::new(256, 8);
        let last = t.client(PartitionId(255));
        assert!(last.0 < GAUGE_BASE);
    }

    #[test]
    fn display_forms() {
        assert_eq!(PartitionId(3).to_string(), "P3");
        assert_eq!(format!("{:?}", PartitionId(3)), "P3");
    }
}
