//! The tree model of transactions (paper §2.1).
//!
//! "A transaction is first submitted to one server, which performs its
//! subtransaction and then sends subtransactions down to other servers for
//! further execution. These servers may in turn send more subtransactions to
//! other servers, possibly causing the transaction to visit some servers
//! multiple times."
//!
//! A [`TxnPlan`] is the static description of such a tree: the root
//! [`SubtxnPlan`] names its node, its local operation steps, and its child
//! subtransaction plans. Engines walk the tree at run time, shipping each
//! child plan to its node after the parent's local steps complete.

use std::collections::BTreeSet;
use std::fmt;

use crate::ids::{Key, NodeId};
use crate::ops::UpdateOp;
use crate::value::ValueKind;

/// One step of a subtransaction: a read or an update of a local data item.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpStep {
    /// Read the transaction-visible version of `Key` (paper §4.1 step 3 /
    /// §4.2: "the maximum existing version … that does not exceed V(T)").
    Read(Key),
    /// Update `Key` with the given operation (paper §4.1 step 4).
    Update(Key, UpdateOp),
}

impl OpStep {
    /// The key this step touches.
    #[inline]
    pub fn key(&self) -> Key {
        match self {
            OpStep::Read(k) | OpStep::Update(k, _) => *k,
        }
    }

    /// Is this step a write?
    #[inline]
    pub fn is_update(&self) -> bool {
        matches!(self, OpStep::Update(..))
    }
}

/// Plan of one subtransaction: where it runs, what it does locally, and
/// which child subtransactions it spawns afterwards.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SubtxnPlan {
    /// Node the subtransaction executes on.
    pub node: NodeId,
    /// Local operation steps, executed under local concurrency control.
    pub steps: Vec<OpStep>,
    /// Child subtransactions, shipped to their nodes after the local steps.
    pub children: Vec<SubtxnPlan>,
}

impl SubtxnPlan {
    /// New leaf subtransaction plan.
    pub fn new(node: NodeId) -> Self {
        SubtxnPlan {
            node,
            steps: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Append a read step (builder style).
    #[must_use]
    pub fn read(mut self, key: Key) -> Self {
        self.steps.push(OpStep::Read(key));
        self
    }

    /// Append an update step (builder style).
    #[must_use]
    pub fn update(mut self, key: Key, op: UpdateOp) -> Self {
        self.steps.push(OpStep::Update(key, op));
        self
    }

    /// Append a child subtransaction (builder style).
    #[must_use]
    pub fn child(mut self, child: SubtxnPlan) -> Self {
        self.children.push(child);
        self
    }

    /// Depth of this subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SubtxnPlan::depth)
            .max()
            .unwrap_or(0)
    }

    /// Total number of subtransactions in this subtree, including `self`.
    pub fn count(&self) -> usize {
        1 + self.children.iter().map(SubtxnPlan::count).sum::<usize>()
    }

    /// Visit every subtransaction plan in the subtree, preorder.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a SubtxnPlan)) {
        f(self);
        for c in &self.children {
            c.visit(f);
        }
    }

    /// Every node visited by this subtree (deduplicated, sorted).
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut set = BTreeSet::new();
        self.visit(&mut |s| {
            set.insert(s.node);
        });
        set.into_iter().collect()
    }

    fn collect_steps<'a>(&'a self, out: &mut Vec<(NodeId, &'a OpStep)>) {
        for s in &self.steps {
            out.push((self.node, s));
        }
        for c in &self.children {
            c.collect_steps(out);
        }
    }

    /// All `(node, step)` pairs in the subtree, preorder.
    pub fn all_steps(&self) -> Vec<(NodeId, &OpStep)> {
        let mut out = Vec::new();
        self.collect_steps(&mut out);
        out
    }

    /// Rewrite every subtransaction's node through `f`, preserving the tree
    /// shape and steps. This is how sharded drivers re-home a plan written
    /// against logical node indices onto the global ids of a
    /// [`crate::partition::Topology`] block layout.
    #[must_use]
    pub fn map_nodes(&self, f: &mut impl FnMut(NodeId) -> NodeId) -> SubtxnPlan {
        SubtxnPlan {
            node: f(self.node),
            steps: self.steps.clone(),
            children: self.children.iter().map(|c| c.map_nodes(f)).collect(),
        }
    }
}

/// Classification of a transaction (paper §3.1 and §5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxnKind {
    /// Member of the read set `R`: no update steps at all. Never delayed,
    /// never aborted, takes no locks (paper §8).
    ReadOnly,
    /// Member of the well-behaved update set `U`: all update steps commute.
    Commuting,
    /// Non-well-behaved transaction handled by NC3V (paper §5): takes
    /// non-commute locks and performs two-phase commitment.
    NonCommuting,
}

impl fmt::Display for TxnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TxnKind::ReadOnly => "read-only",
            TxnKind::Commuting => "commuting",
            TxnKind::NonCommuting => "non-commuting",
        };
        f.write_str(s)
    }
}

/// Error in a transaction plan, reported by [`TxnPlan::validate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlanError {
    /// A read-only plan contains an update step.
    UpdateInReadOnly {
        /// Node where the offending step sits.
        node: NodeId,
        /// Key of the offending step.
        key: Key,
    },
    /// A commuting (well-behaved) plan contains a non-commuting operation.
    NonCommutingOpInCommuting {
        /// Node where the offending step sits.
        node: NodeId,
        /// Key of the offending step.
        key: Key,
    },
    /// The plan has no steps anywhere in the tree.
    Empty,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UpdateInReadOnly { node, key } => {
                write!(f, "read-only plan updates {key} on {node}")
            }
            PlanError::NonCommutingOpInCommuting { node, key } => {
                write!(f, "commuting plan has non-commuting op on {key} at {node}")
            }
            PlanError::Empty => f.write_str("plan has no steps"),
        }
    }
}

impl std::error::Error for PlanError {}

/// The full static plan of one global transaction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TxnPlan {
    /// Classification driving protocol treatment.
    pub kind: TxnKind,
    /// Root subtransaction; its `node` is where the client submits.
    pub root: SubtxnPlan,
}

impl TxnPlan {
    /// New read-only plan rooted at `root`.
    pub fn read_only(root: SubtxnPlan) -> Self {
        TxnPlan {
            kind: TxnKind::ReadOnly,
            root,
        }
    }

    /// New well-behaved (commuting) update plan rooted at `root`.
    pub fn commuting(root: SubtxnPlan) -> Self {
        TxnPlan {
            kind: TxnKind::Commuting,
            root,
        }
    }

    /// New non-commuting update plan rooted at `root`.
    pub fn non_commuting(root: SubtxnPlan) -> Self {
        TxnPlan {
            kind: TxnKind::NonCommuting,
            root,
        }
    }

    /// Check the plan against its declared kind.
    pub fn validate(&self) -> Result<(), PlanError> {
        let steps = self.root.all_steps();
        if steps.is_empty() {
            return Err(PlanError::Empty);
        }
        for (node, step) in steps {
            if let OpStep::Update(key, op) = step {
                match self.kind {
                    TxnKind::ReadOnly => {
                        return Err(PlanError::UpdateInReadOnly { node, key: *key })
                    }
                    TxnKind::Commuting if !op.is_commuting() => {
                        return Err(PlanError::NonCommutingOpInCommuting { node, key: *key })
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// Does the plan contain any update step?
    pub fn has_updates(&self) -> bool {
        self.root.all_steps().iter().any(|(_, s)| s.is_update())
    }

    /// Keys written anywhere in the tree (deduplicated, sorted).
    pub fn keys_written(&self) -> Vec<Key> {
        let mut set = BTreeSet::new();
        for (_, s) in self.root.all_steps() {
            if let OpStep::Update(k, _) = s {
                set.insert(*k);
            }
        }
        set.into_iter().collect()
    }

    /// Journal keys this plan appends to or retracts from (deduplicated,
    /// sorted). This is the auditor's per-writer ground truth: counters
    /// cannot be audited per-writer, journals can — every committed
    /// journal write must surface as an entry tagged with its writer.
    pub fn journal_keys(&self) -> Vec<Key> {
        let mut set = BTreeSet::new();
        for (_, s) in self.root.all_steps() {
            if let OpStep::Update(k, op) = s {
                if op.applies_to() == ValueKind::Journal {
                    set.insert(*k);
                }
            }
        }
        set.into_iter().collect()
    }

    /// Keys read anywhere in the tree (deduplicated, sorted).
    pub fn keys_read(&self) -> Vec<Key> {
        let mut set = BTreeSet::new();
        for (_, s) in self.root.all_steps() {
            if let OpStep::Read(k) = s {
                set.insert(*k);
            }
        }
        set.into_iter().collect()
    }

    /// Rewrite every subtransaction's node through `f` (see
    /// [`SubtxnPlan::map_nodes`]).
    #[must_use]
    pub fn map_nodes(&self, f: &mut impl FnMut(NodeId) -> NodeId) -> TxnPlan {
        TxnPlan {
            kind: self.kind,
            root: self.root.map_nodes(f),
        }
    }

    /// Build the compensating plan for this transaction (paper §3.2): the
    /// same tree shape, with every update step replaced by its compensating
    /// operation and every read dropped.
    ///
    /// `Assign` compensation needs read-back values, which only the executor
    /// has; plan-level compensation therefore only exists for well-behaved
    /// transactions (NC3V transactions roll back via 2PC instead, so this is
    /// not a restriction in practice).
    pub fn compensating_plan(&self) -> TxnPlan {
        fn comp(sub: &SubtxnPlan) -> SubtxnPlan {
            SubtxnPlan {
                node: sub.node,
                steps: sub
                    .steps
                    .iter()
                    .filter_map(|s| match s {
                        OpStep::Update(k, op) => Some(OpStep::Update(*k, op.compensation(None))),
                        OpStep::Read(_) => None,
                    })
                    .collect(),
                children: sub.children.iter().map(comp).collect(),
            }
        }
        TxnPlan {
            kind: self.kind,
            root: comp(&self.root),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(n: u64) -> Key {
        Key(n)
    }
    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    /// The paper's motivating T1 = {w11(x1), w12(x2)}: root at the front
    /// end, writes in radiology and pediatrics.
    fn hospital_update() -> TxnPlan {
        TxnPlan::commuting(
            SubtxnPlan::new(n(0))
                .child(
                    SubtxnPlan::new(n(1))
                        .update(k(1), UpdateOp::Add(100))
                        .update(
                            k(10),
                            UpdateOp::Append {
                                amount: 100,
                                tag: 7,
                            },
                        ),
                )
                .child(SubtxnPlan::new(n(2)).update(k(2), UpdateOp::Add(40))),
        )
    }

    #[test]
    fn tree_shape_queries() {
        let t = hospital_update();
        assert_eq!(t.root.depth(), 2);
        assert_eq!(t.root.count(), 3);
        assert_eq!(t.root.nodes(), vec![n(0), n(1), n(2)]);
        assert_eq!(t.keys_written(), vec![k(1), k(2), k(10)]);
        assert!(t.keys_read().is_empty());
        assert!(t.has_updates());
    }

    #[test]
    fn validation_accepts_well_formed() {
        hospital_update().validate().unwrap();
        let r = TxnPlan::read_only(SubtxnPlan::new(n(0)).read(k(1)).read(k(2)));
        r.validate().unwrap();
        let nc = TxnPlan::non_commuting(SubtxnPlan::new(n(0)).update(k(5), UpdateOp::Assign(3)));
        nc.validate().unwrap();
    }

    #[test]
    fn validation_rejects_update_in_read_only() {
        let bad = TxnPlan::read_only(SubtxnPlan::new(n(1)).update(k(3), UpdateOp::Add(1)));
        assert_eq!(
            bad.validate(),
            Err(PlanError::UpdateInReadOnly {
                node: n(1),
                key: k(3)
            })
        );
    }

    #[test]
    fn validation_rejects_assign_in_commuting() {
        let bad = TxnPlan::commuting(
            SubtxnPlan::new(n(0)).child(SubtxnPlan::new(n(2)).update(k(3), UpdateOp::Assign(1))),
        );
        assert_eq!(
            bad.validate(),
            Err(PlanError::NonCommutingOpInCommuting {
                node: n(2),
                key: k(3)
            })
        );
    }

    #[test]
    fn validation_rejects_empty() {
        let bad = TxnPlan::commuting(SubtxnPlan::new(n(0)));
        assert_eq!(bad.validate(), Err(PlanError::Empty));
    }

    #[test]
    fn compensating_plan_mirrors_tree() {
        let t = hospital_update();
        let c = t.compensating_plan();
        assert_eq!(c.root.count(), t.root.count());
        assert_eq!(c.root.nodes(), t.root.nodes());
        let steps = c.root.all_steps();
        assert_eq!(steps.len(), 3);
        assert!(steps.iter().all(|(_, s)| s.is_update()));
        assert!(steps
            .iter()
            .any(|(_, s)| matches!(s, OpStep::Update(_, UpdateOp::Add(-100)))));
        assert!(steps.iter().any(|(_, s)| matches!(
            s,
            OpStep::Update(
                _,
                UpdateOp::Retract {
                    amount: 100,
                    tag: 7
                }
            )
        )));
    }

    #[test]
    fn compensating_plan_drops_reads() {
        let t = TxnPlan::commuting(
            SubtxnPlan::new(n(0))
                .read(k(1))
                .update(k(2), UpdateOp::Add(1)),
        );
        let c = t.compensating_plan();
        assert_eq!(c.root.steps.len(), 1);
    }

    #[test]
    fn display_kinds() {
        assert_eq!(TxnKind::ReadOnly.to_string(), "read-only");
        assert_eq!(TxnKind::Commuting.to_string(), "commuting");
        assert_eq!(TxnKind::NonCommuting.to_string(), "non-commuting");
    }

    #[test]
    fn op_step_accessors() {
        let r = OpStep::Read(k(4));
        let u = OpStep::Update(k(5), UpdateOp::Add(1));
        assert_eq!(r.key(), k(4));
        assert_eq!(u.key(), k(5));
        assert!(!r.is_update());
        assert!(u.is_update());
    }

    #[test]
    fn visits_same_server_twice() {
        // Paper §2.1: a transaction may visit some servers multiple times.
        let t = SubtxnPlan::new(n(0))
            .child(SubtxnPlan::new(n(1)).child(SubtxnPlan::new(n(0)).read(k(1))));
        assert_eq!(t.nodes(), vec![n(0), n(1)]);
        assert_eq!(t.count(), 3);
        assert_eq!(t.depth(), 3);
    }
}
