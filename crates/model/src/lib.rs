//! Data model for the 3V protocol reproduction.
//!
//! This crate defines the vocabulary shared by every engine in the workspace:
//!
//! * [`ids`] — strongly-typed identifiers for nodes, transactions,
//!   subtransactions, versions, and data items;
//! * [`value`] — the value types of a *data recording system* (paper §6):
//!   summary counters, observation journals, and plain registers;
//! * [`ops`] — update operations and their commutativity relation (paper §3.1);
//! * [`plan`] — the *tree model of transactions* (paper §2.1, following the
//!   R* model [Mohan et al. 1986]): a transaction is a tree of
//!   subtransactions, each bound to one node;
//! * [`schema`] — the static placement of data items on nodes;
//! * [`partition`] — partition identifiers, the sharded actor-id layout
//!   ([`Topology`]), and the reserved gauge ids that key cross-partition
//!   counter rows.
//!
//! Nothing in this crate knows about versions-at-rest, messages, or clocks;
//! those live in `threev-storage`, `threev-core`, and `threev-sim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ids;
pub mod ops;
pub mod partition;
pub mod plan;
pub mod schema;
pub mod value;

pub use ids::{Key, NodeId, SubtxnId, TxnId, VersionNo};
pub use ops::UpdateOp;
pub use partition::{gauge_node, gauge_peer, PartitionId, Topology};
pub use plan::{OpStep, PlanError, SubtxnPlan, TxnKind, TxnPlan};
pub use schema::{KeyDecl, Schema};
pub use value::{JournalEntry, Value, ValueKind};
