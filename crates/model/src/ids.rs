//! Strongly-typed identifiers.
//!
//! All identifiers are small `Copy` newtypes so they can be used as map keys
//! and passed by value everywhere without allocation.

use std::fmt;

/// Identifier of a database node (a "site" in the paper: `p`, `q`, `s`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Index into dense per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Global transaction identifier.
///
/// `seq` is a globally unique submission sequence number assigned by the
/// workload driver; `origin` is the node the root subtransaction was
/// submitted to. The derived total order (`seq`, then `origin`) doubles as
/// the timestamp order used by wait-die deadlock avoidance in the lock table
/// (`threev-storage`): lower `TxnId` = older transaction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId {
    /// Globally unique submission sequence number (wait-die age; lower = older).
    pub seq: u64,
    /// Node the root subtransaction was submitted to.
    pub origin: NodeId,
}

impl TxnId {
    /// Construct a transaction id.
    #[inline]
    pub fn new(seq: u64, origin: NodeId) -> Self {
        TxnId { seq, origin }
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}@{}", self.seq, self.origin)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}@{}", self.seq, self.origin)
    }
}

/// Identifier of one subtransaction instance within a transaction tree.
///
/// A subtransaction is created either by the client (the root) or by a parent
/// subtransaction executing on some node. `spawner` is the node that created
/// the instance and `seq` is drawn from that node's local spawn counter, so
/// the pair is unique across a run without any coordination.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubtxnId {
    /// Node whose local counter allocated this id.
    pub spawner: NodeId,
    /// Value of the spawner's local counter.
    pub seq: u64,
}

impl SubtxnId {
    /// Construct a subtransaction id.
    #[inline]
    pub fn new(spawner: NodeId, seq: u64) -> Self {
        SubtxnId { spawner, seq }
    }
}

impl fmt::Debug for SubtxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}.{}", self.spawner.0, self.seq)
    }
}

/// A data version number (paper §4: `vu`, `vr`, `V(T)`).
///
/// The paper assumes version numbers increase monotonically and notes that a
/// real implementation could recycle three distinct numbers; we keep the
/// monotone `u32` for clarity, exactly as the paper's presentation does.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VersionNo(pub u32);

impl VersionNo {
    /// The initial read version (paper §4: all records start at version 0).
    pub const ZERO: VersionNo = VersionNo(0);

    /// Next version number.
    #[inline]
    pub fn next(self) -> VersionNo {
        VersionNo(self.0 + 1)
    }

    /// Previous version number; saturates at zero.
    #[inline]
    pub fn prev(self) -> VersionNo {
        VersionNo(self.0.saturating_sub(1))
    }
}

impl fmt::Debug for VersionNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VersionNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of a data item. Each key lives on exactly one node (the data is
/// fragmented, not replicated — paper §1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub u64);

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_order_is_by_seq_then_origin() {
        let a = TxnId::new(1, NodeId(5));
        let b = TxnId::new(2, NodeId(0));
        let c = TxnId::new(2, NodeId(1));
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn version_next_prev() {
        let v = VersionNo(3);
        assert_eq!(v.next(), VersionNo(4));
        assert_eq!(v.prev(), VersionNo(2));
        assert_eq!(VersionNo::ZERO.prev(), VersionNo::ZERO);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(VersionNo(2).to_string(), "v2");
        assert_eq!(Key(9).to_string(), "k9");
        assert_eq!(TxnId::new(7, NodeId(1)).to_string(), "t7@n1");
        assert_eq!(format!("{:?}", SubtxnId::new(NodeId(2), 4)), "s2.4");
    }

    #[test]
    fn node_index() {
        assert_eq!(NodeId(7).index(), 7);
    }
}
