//! Property-based verification of the crate's central semantic claim
//! (paper §3.1): *well-behaved operation sequences commute* — applying any
//! permutation of commuting updates from distinct transactions yields the
//! same final value (journals compared as sets), which is exactly the
//! property the 3V protocol's local serialization relies on.

use proptest::prelude::*;
use threev_model::{JournalEntry, NodeId, TxnId, UpdateOp, Value};

fn tid(seq: u64) -> TxnId {
    TxnId::new(seq, NodeId(0))
}

/// Strategy over commuting ops attributed to a transaction.
fn commuting_op() -> impl Strategy<Value = UpdateOp> {
    prop_oneof![
        (-1000i64..1000).prop_map(UpdateOp::Add),
        ((-1000i64..1000), 0u32..8).prop_map(|(amount, tag)| UpdateOp::Append { amount, tag }),
    ]
}

fn canonical_journal(v: &Value) -> Vec<(TxnId, i64, u32)> {
    let mut entries: Vec<(TxnId, i64, u32)> = v
        .as_journal()
        .unwrap()
        .iter()
        .map(|e: &JournalEntry| (e.txn, e.amount, e.tag))
        .collect();
    entries.sort_unstable();
    entries
}

fn apply_all(init: &Value, ops: &[(u64, UpdateOp)], order: &[usize]) -> Value {
    let mut v = init.clone();
    for &i in order {
        let (seq, op) = ops[i];
        op.apply(&mut v, tid(seq)).unwrap();
    }
    v
}

proptest! {
    /// Adds on a counter commute under any permutation.
    #[test]
    fn counter_adds_commute(
        deltas in proptest::collection::vec(-10_000i64..10_000, 1..20),
        seed in any::<u64>(),
    ) {
        let ops: Vec<(u64, UpdateOp)> = deltas
            .iter()
            .enumerate()
            .map(|(i, &d)| (i as u64, UpdateOp::Add(d)))
            .collect();
        let forward: Vec<usize> = (0..ops.len()).collect();
        let mut shuffled = forward.clone();
        // Deterministic Fisher-Yates from the seed.
        let mut s = seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let a = apply_all(&Value::Counter(0), &ops, &forward);
        let b = apply_all(&Value::Counter(0), &ops, &shuffled);
        prop_assert_eq!(a, b);
    }

    /// Appends (and balanced append/retract pairs) on a journal commute as
    /// sets under any permutation.
    #[test]
    fn journal_ops_commute_as_sets(
        ops in proptest::collection::vec((0u64..6, commuting_op()), 1..24),
        seed in any::<u64>(),
    ) {
        // Journals only: map Add onto Append so types line up.
        let ops: Vec<(u64, UpdateOp)> = ops
            .into_iter()
            .map(|(txn, op)| {
                let op = match op {
                    UpdateOp::Add(d) => UpdateOp::Append { amount: d, tag: 0 },
                    other => other,
                };
                (txn, op)
            })
            .collect();
        let forward: Vec<usize> = (0..ops.len()).collect();
        let mut shuffled = forward.clone();
        let mut s = seed | 1;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let a = apply_all(&Value::Journal(vec![]), &ops, &forward);
        let b = apply_all(&Value::Journal(vec![]), &ops, &shuffled);
        prop_assert_eq!(canonical_journal(&a), canonical_journal(&b));
    }

    /// A transaction followed by its compensation is an identity on
    /// counters and journals, regardless of interleaved foreign commuting
    /// ops (the §3.2 requirement for coordination-free compensation).
    #[test]
    fn compensation_is_identity_under_interleaving(
        own in proptest::collection::vec(commuting_op(), 1..8),
        foreign in proptest::collection::vec(commuting_op(), 0..8),
        counter_mode in any::<bool>(),
    ) {
        let me = tid(1);
        let other = tid(2);
        let init = if counter_mode {
            Value::Counter(42)
        } else {
            Value::Journal(vec![])
        };
        let fix = |op: UpdateOp| -> UpdateOp {
            match (counter_mode, op) {
                (true, UpdateOp::Append { amount, .. }) => UpdateOp::Add(amount),
                (true, UpdateOp::Retract { amount, .. }) => UpdateOp::Add(-amount),
                (false, UpdateOp::Add(d)) => UpdateOp::Append { amount: d, tag: 0 },
                (_, op) => op,
            }
        };

        // Baseline: only the foreign ops.
        let mut baseline = init.clone();
        for op in &foreign {
            fix(*op).apply(&mut baseline, other).unwrap();
        }

        // Interleaved: own ops, then foreign ops, then own compensation.
        let mut v = init.clone();
        for op in &own {
            fix(*op).apply(&mut v, me).unwrap();
        }
        for op in &foreign {
            fix(*op).apply(&mut v, other).unwrap();
        }
        for op in own.iter().rev() {
            fix(*op).compensation(None).apply(&mut v, me).unwrap();
        }

        if counter_mode {
            prop_assert_eq!(v, baseline);
        } else {
            prop_assert_eq!(canonical_journal(&v), canonical_journal(&baseline));
        }
    }
}
