//! The event heap, the [`Actor`] trait, and the [`Simulation`] driver.
//!
//! Actors are addressed by [`NodeId`]. Database nodes occupy the low ids;
//! auxiliary actors (clients, coordinators) use ids above the node count —
//! the kernel does not care, it only routes.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use threev_model::NodeId;

use crate::network::LatencyModel;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;
use crate::transport::{FaultPlane, Transport, TransportStats};

/// A simulated participant: a database node, a client, or a coordinator.
///
/// Implementations are pure state machines: all effects go through the
/// [`Ctx`] handed to each callback, which is what lets `threev-runtime` run
/// the very same engine on real threads.
pub trait Actor {
    /// Message type exchanged between the actors of one simulation.
    type Msg;

    /// Called once before the first event is processed.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// A message from `from` has been delivered.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// A batch of messages, all timestamped `ctx.now()`, has been
    /// delivered. The messages are in delivery order and MUST be processed
    /// in that order — batching is an amortisation of per-delivery
    /// overhead, never a reordering. The default implementation forwards
    /// to [`Actor::on_message`] one by one; engines override it to hoist
    /// per-wakeup work (dispatch, stat flushes) out of the per-message
    /// loop. Implementations must leave `batch` empty on return so the
    /// kernel can reuse the buffer.
    fn on_batch(&mut self, ctx: &mut Ctx<'_, Self::Msg>, batch: &mut Vec<(NodeId, Self::Msg)>) {
        for (from, msg) in batch.drain(..) {
            self.on_message(ctx, from, msg);
        }
    }

    /// A timer scheduled with [`Ctx::schedule`] has fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, token: u64) {
        let _ = (ctx, token);
    }

    /// The actor has crashed (fault-plane [`crate::transport::NodeCrash`]):
    /// all volatile state is lost *now*. Implementations drop their in-memory
    /// state; anything durable (a write-ahead log) survives. The kernel has
    /// already purged the actor's queued deliveries and timers. Default: no-op
    /// (crash-oblivious actors simply keep their state, which models a
    /// process that was merely unreachable).
    fn on_crash(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// The actor restarts after its crash dead-window. Implementations
    /// recover from their durable state here (checkpoint + log replay).
    /// Default: no-op.
    fn on_restart(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }
}

/// Simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Latency model for messages between distinct actors.
    pub latency: LatencyModel,
    /// Latency for messages an actor sends to itself (local hand-off).
    pub local_latency: SimDuration,
    /// Enforce per-link FIFO delivery (real TCP-like links). When `false`,
    /// jittery latency models may reorder messages — the adversarial mode.
    pub fifo: bool,
    /// RNG seed; everything downstream (latency jitter, actor RNG use) is a
    /// pure function of this seed.
    pub seed: u64,
    /// Deliver same-timestamp runs of messages to the same actor as one
    /// [`Actor::on_batch`] call instead of per-message [`Actor::on_message`]
    /// calls. Observable behaviour is identical (batching never reorders);
    /// only per-delivery dispatch overhead is amortised.
    pub batch: bool,
    /// Injectable fault plane (drop/duplicate/delay/partition/pause); see
    /// [`crate::transport`]. Default: no faults. Fault decisions draw from
    /// an RNG stream decorrelated from `seed`'s latency stream, so a run
    /// with faults disabled is bit-identical to one where the field does
    /// not exist at all.
    pub faults: FaultPlane,
    /// Fault-stream selector, mixed into the fault RNG's seed alongside
    /// the salt. [`SimConfig::for_partition`] sets it so partition-local
    /// fault streams are decorrelated *independently* of the delivery
    /// streams: deriving the fault seed from the partition-mixed delivery
    /// seed alone would make the two partitions' fault streams exactly as
    /// related as their delivery seeds (one shared XOR constant apart).
    /// Zero — the default and the partition-0 value — reproduces the
    /// historical derivation bit-for-bit.
    pub fault_stream: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latency: LatencyModel::lan(),
            local_latency: SimDuration::from_micros(1),
            fifo: false,
            seed: 0xC0FFEE,
            batch: false,
            faults: FaultPlane::default(),
            fault_stream: 0,
        }
    }
}

impl SimConfig {
    /// Config with the given seed and defaults elsewhere.
    pub fn seeded(seed: u64) -> Self {
        SimConfig {
            seed,
            ..SimConfig::default()
        }
    }

    /// Config for partition `i` of a sharded run: same settings, with the
    /// seed decorrelated per partition. Every driver that splits a system
    /// across several `Simulation` instances must derive per-partition
    /// configs through this — ad-hoc seed mixing in each driver is how
    /// partitions end up accidentally correlated (or accidentally
    /// different between drivers that should be comparable).
    pub fn for_partition(&self, i: usize) -> SimConfig {
        SimConfig {
            seed: self.seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15),
            // A second, distinct mixing constant: the fault stream must be
            // decorrelated per partition on its own axis, not inherit the
            // delivery stream's mixing (see the `fault_stream` field doc).
            fault_stream: (i as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
            ..self.clone()
        }
    }
}

/// Aggregate kernel statistics (basis of experiment X9, message overhead).
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Total messages delivered.
    pub messages: u64,
    /// Total timer firings.
    pub timers: u64,
    /// Total events processed.
    pub events: u64,
    /// [`Actor::on_batch`] invocations (batched delivery only).
    pub batches: u64,
    /// Messages delivered through [`Actor::on_batch`] (batched delivery
    /// only). `batched_msgs / batches` is the mean batch size.
    pub batched_msgs: u64,
    /// Messages dropped by the transport fault plane (loss or partition).
    /// Provably zero when [`SimConfig::faults`] is inactive.
    pub dropped: u64,
    /// Messages duplicated by the transport fault plane.
    pub duplicated: u64,
    /// Fault-induced reorderings (deliveries overtaking a fault-delayed
    /// copy); latency jitter alone never counts here.
    pub reordered: u64,
    /// Node crashes executed (fault-plane crash injection).
    pub crashes: u64,
    /// Queued deliveries and timers purged by node crashes (the in-flight
    /// inbox lost with each crash).
    pub crash_purged: u64,
    /// Messages by engine-supplied tag (see [`Ctx::send_tagged`]).
    pub messages_by_tag: BTreeMap<&'static str, u64>,
}

impl SimStats {
    /// Count of messages sent with `tag`.
    pub fn tagged(&self, tag: &str) -> u64 {
        self.messages_by_tag.get(tag).copied().unwrap_or(0)
    }
}

enum Payload<M> {
    Deliver { to: NodeId, from: NodeId, msg: M },
    Timer { node: NodeId, token: u64 },
    Crash { node: NodeId, until: SimTime },
    Restart { node: NodeId },
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    payload: Payload<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The kind of a pending event, as exposed to external schedulers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EnabledKind {
    /// A message delivery.
    Deliver,
    /// A timer firing.
    Timer,
    /// A fault-plane crash.
    Crash,
    /// A restart after a crash dead-window.
    Restart,
}

/// Metadata of one event an external scheduler may choose next. The
/// payload itself stays in the kernel; schedulers reorder, they do not
/// inspect message contents (that would make exploration engine-specific).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EnabledEvent {
    /// Scheduled virtual time (a *hint* under external scheduling: a chosen
    /// event runs at `max(now, at)`).
    pub at: SimTime,
    /// Kernel-global sequence number — the event's identity. Stable across
    /// replays of the same schedule (determinism), which is what lets a
    /// recorded schedule refer to events by choice index.
    pub seq: u64,
    /// What kind of event this is.
    pub kind: EnabledKind,
    /// The actor the event is addressed to.
    pub target: NodeId,
    /// The sender, for deliveries.
    pub from: Option<NodeId>,
}

/// A pluggable schedule policy for [`Simulation`]-level model checking:
/// given the enabled-event set (sorted by `(at, seq)`), pick the index of
/// the event to execute next.
pub trait Scheduler {
    /// Choose an index into `enabled` (callers clamp out-of-range values).
    /// `enabled` is never empty.
    fn choose(&mut self, enabled: &[EnabledEvent]) -> usize;
}

/// The default policy: always pick index 0, the `(at, seq)`-minimal event —
/// exactly the event [`Simulation::step`] would pop, so driving a
/// simulation through this scheduler is bit-identical to `step()` (the
/// `earliest_scheduler_is_bit_identical` test pins this down).
#[derive(Clone, Copy, Debug, Default)]
pub struct EarliestScheduler;

impl Scheduler for EarliestScheduler {
    fn choose(&mut self, _enabled: &[EnabledEvent]) -> usize {
        0
    }
}

/// Why [`Simulation::run_to_quiescence`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuiesceOutcome {
    /// The event queue drained completely.
    Quiescent(SimTime),
    /// The virtual-time cap was reached with events still pending.
    TimeCapped(SimTime),
    /// An actor requested a stop via [`Ctx::request_stop`].
    Stopped(SimTime),
}

/// Kernel internals shared with actors through [`Ctx`].
struct Core<M> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Event<M>>,
    cfg: SimConfig,
    rng: SmallRng,
    transport: Transport,
    stats: SimStats,
    stop: bool,
    /// Set once [`Simulation::step_chosen`] has been used: chosen-order
    /// execution may run events "late", so the heap-order time assertion
    /// in [`Simulation::step`] no longer applies.
    chosen_mode: bool,
    /// Nodes whose Crash event has executed but whose Restart has not.
    /// While a node is down its pending deliveries and timers are not
    /// enabled (a down node processes nothing); they surface again after
    /// the restart, which the network is always allowed to emulate by
    /// delaying delivery.
    down: BTreeSet<NodeId>,
    trace: Option<Trace>,
    /// First local actor id (partitioned simulations; see
    /// [`Simulation::new_partition`]). Sends to non-local ids land in
    /// `outbox` instead of the event queue.
    local_base: u16,
    local_len: u16,
    outbox: Vec<(NodeId, NodeId, M)>,
}

impl<M> Core<M> {
    fn push(&mut self, at: SimTime, payload: Payload<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { at, seq, payload });
    }

    fn is_local(&self, id: NodeId) -> bool {
        let i = id.0;
        i >= self.local_base && i < self.local_base + self.local_len
    }
}

impl<M: Clone> Core<M> {
    fn send_from(&mut self, me: NodeId, to: NodeId, msg: M, tag: &'static str) {
        self.stats.messages += 1;
        *self.stats.messages_by_tag.entry(tag).or_insert(0) += 1;
        if !self.is_local(to) {
            // Cross-partition: the hosting driver routes it (real channel,
            // real latency, and the driver's own wire transport) — nothing
            // is decided here.
            self.outbox.push((me, to, msg));
            return;
        }
        // All delivery policy — latency, FIFO, faults — lives in the
        // transport; the kernel only schedules what it is told to.
        let plan = self.transport.plan(me, to, self.now, &mut self.rng);
        self.stats.dropped += u64::from(plan.dropped);
        self.stats.duplicated += u64::from(plan.duplicated);
        self.stats.reordered += plan.reordered;
        match (plan.first, plan.dup) {
            (Some(at), Some(dup_at)) => {
                self.push(
                    at,
                    Payload::Deliver {
                        to,
                        from: me,
                        msg: msg.clone(),
                    },
                );
                self.push(dup_at, Payload::Deliver { to, from: me, msg });
            }
            (Some(at), None) => self.push(at, Payload::Deliver { to, from: me, msg }),
            (None, _) => {}
        }
    }
}

/// Capability handle given to actor callbacks: clock, sending, timers, RNG,
/// tracing, and stop requests.
pub struct Ctx<'a, M> {
    core: &'a mut Core<M>,
    me: NodeId,
}

impl<M> Ctx<'_, M> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The id of the actor being called.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Fire [`Actor::on_timer`] with `token` after `delay`.
    pub fn schedule(&mut self, delay: SimDuration, token: u64) {
        let at = self.core.now + delay;
        self.core.push(
            at,
            Payload::Timer {
                node: self.me,
                token,
            },
        );
    }

    /// Deterministic per-simulation RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.core.rng
    }

    /// Ask the driver to stop after the current event.
    pub fn request_stop(&mut self) {
        self.core.stop = true;
    }

    /// Is tracing enabled? (Lets callers skip building expensive strings.)
    #[inline]
    pub fn tracing(&self) -> bool {
        self.core.trace.is_some()
    }

    /// Record a trace line; `f` is only evaluated when tracing is enabled.
    pub fn trace(&mut self, f: impl FnOnce() -> String) {
        let now = self.core.now;
        let me = self.me;
        if let Some(t) = &mut self.core.trace {
            t.record(now, me, f());
        }
    }
}

impl<M: Clone> Ctx<'_, M> {
    /// Send `msg` to `to` with the default tag. (`M: Clone` because the
    /// transport's fault plane may deliver a duplicate copy.)
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.core.send_from(self.me, to, msg, "msg");
    }

    /// Send `msg` to `to`, accounted under `tag` in [`SimStats`].
    pub fn send_tagged(&mut self, to: NodeId, msg: M, tag: &'static str) {
        self.core.send_from(self.me, to, msg, tag);
    }
}

/// A deterministic discrete-event simulation over a set of actors.
pub struct Simulation<A: Actor> {
    actors: Vec<A>,
    core: Core<A::Msg>,
    started: bool,
    /// Reused across every batched delivery; `on_batch` drains it.
    batch_buf: Vec<(NodeId, A::Msg)>,
}

impl<A: Actor> Simulation<A> {
    /// Build a simulation over `actors` (actor `i` has `NodeId(i)`).
    pub fn new(actors: Vec<A>, cfg: SimConfig) -> Self {
        Self::new_partition(actors, 0, u16::MAX, cfg)
    }

    /// Build a *partitioned* simulation: this instance hosts actors with
    /// ids `base .. base + actors.len()`, inside a larger system of
    /// `total` actors. Sends to ids outside the partition are collected in
    /// an outbox (see [`Simulation::take_outbox`]) for an external driver —
    /// the real-thread runtime — to route. `total` caps `is_local` checks;
    /// pass `u16::MAX` when unknown.
    pub fn new_partition(actors: Vec<A>, base: u16, total: u16, cfg: SimConfig) -> Self {
        let _ = total;
        let rng = SmallRng::seed_from_u64(cfg.seed);
        let transport = Transport::new(&cfg);
        let local_len = actors.len() as u16;
        let mut sim = Simulation {
            actors,
            core: Core {
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                cfg,
                rng,
                transport,
                stats: SimStats::default(),
                stop: false,
                chosen_mode: false,
                down: BTreeSet::new(),
                trace: None,
                local_base: base,
                local_len,
                outbox: Vec::new(),
            },
            started: false,
            batch_buf: Vec::new(),
        };
        // Schedule crash-restart events for local actors up front. Guarded
        // on the crash list being non-empty so crash-free runs consume no
        // sequence numbers and stay bit-identical to pre-crash-support
        // schedules; with crashes, every ordinary event's seq shifts by the
        // same constant, which preserves relative order.
        if !sim.core.cfg.faults.crashes.is_empty() {
            let crashes = sim.core.cfg.faults.crashes.clone();
            for c in crashes {
                if sim.core.is_local(c.node) {
                    sim.core.push(
                        c.at,
                        Payload::Crash {
                            node: c.node,
                            until: c.until(),
                        },
                    );
                    sim.core.push(c.until(), Payload::Restart { node: c.node });
                }
            }
        }
        sim
    }

    /// Drain messages addressed outside this partition.
    pub fn take_outbox(&mut self) -> Vec<(NodeId, NodeId, A::Msg)> {
        std::mem::take(&mut self.core.outbox)
    }

    /// Drain messages addressed outside this partition into `buf`,
    /// appending. Unlike [`Simulation::take_outbox`] this keeps the outbox
    /// allocation, so a long-running driver touches the allocator only
    /// until both buffers reach their high-water size.
    pub fn drain_outbox(&mut self, buf: &mut Vec<(NodeId, NodeId, A::Msg)>) {
        buf.append(&mut self.core.outbox);
    }

    /// Timestamp of the earliest pending local event, if any.
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.core.queue.peek().map(|e| e.at)
    }

    /// Advance the clock without processing events (real-time drivers tie
    /// virtual time to the wall clock). Monotone: earlier times are
    /// ignored.
    pub fn set_now(&mut self, t: SimTime) {
        if t > self.core.now {
            // Never jump past a pending event: processing order must hold.
            let cap = self.next_event_at().unwrap_or(SimTime::MAX);
            self.core.now = t.min(cap);
        }
    }

    /// Enable trace recording (see [`Trace`]).
    pub fn enable_trace(&mut self) {
        self.core.trace = Some(Trace::default());
    }

    /// Take the recorded trace, if any.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.core.trace.take()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Kernel statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.core.stats
    }

    /// Per-link transport statistics so far (sent/delivered/dropped/
    /// duplicated/reordered).
    pub fn transport_stats(&self) -> &TransportStats {
        self.core.transport.stats()
    }

    /// Shared access to the actors.
    pub fn actors(&self) -> &[A] {
        &self.actors
    }

    /// Mutable access to the actors (between runs; e.g. to inject state).
    pub fn actors_mut(&mut self) -> &mut [A] {
        &mut self.actors
    }

    /// Consume the simulation, returning the actors.
    pub fn into_actors(self) -> Vec<A> {
        self.actors
    }

    /// Inject a message for delivery at an absolute virtual time. Used by
    /// scripted replays (the Table 1 scenario) and workload drivers.
    /// Scripted replays pin exact delivery instants, so this bypasses the
    /// transport deliberately — the fault plane does not apply.
    pub fn inject_at(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: A::Msg) {
        assert!(at >= self.core.now, "cannot inject into the past");
        self.core.stats.messages += 1;
        *self.core.stats.messages_by_tag.entry("inject").or_insert(0) += 1;
        self.core.push(at, Payload::Deliver { to, from, msg });
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.actors.len() {
            let me = NodeId(self.core.local_base + i as u16);
            let mut ctx = Ctx {
                core: &mut self.core,
                me,
            };
            self.actors[i].on_start(&mut ctx);
        }
    }

    /// Process a single event — or, with [`SimConfig::batch`], the whole
    /// run of same-timestamp deliveries to the same actor that heads the
    /// queue. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let Some(ev) = self.core.queue.pop() else {
            return false;
        };
        debug_assert!(
            self.core.chosen_mode || ev.at >= self.core.now,
            "time went backwards"
        );
        if ev.at > self.core.now {
            self.core.now = ev.at;
        }
        if self.core.cfg.batch {
            if let Payload::Deliver { to, from, msg } = ev.payload {
                let idx = to.index() - self.core.local_base as usize;
                assert!(idx < self.actors.len(), "message to unknown actor {to}");
                // Coalesce the head run. Only *consecutive* heap-order
                // events are merged, so batching can never leapfrog a
                // same-timestamp delivery to another actor.
                self.batch_buf.clear();
                self.batch_buf.push((from, msg));
                while let Some(next) = self.core.queue.peek() {
                    let same_run = next.at == ev.at
                        && matches!(&next.payload, Payload::Deliver { to: t, .. } if *t == to);
                    if !same_run {
                        break;
                    }
                    // The event just peeked is the one popped (single-
                    // threaded heap); anything else would be a kernel
                    // defect. Push non-deliveries back rather than panic.
                    match self.core.queue.pop() {
                        Some(Event {
                            payload: Payload::Deliver { from, msg, .. },
                            ..
                        }) => self.batch_buf.push((from, msg)),
                        Some(other) => {
                            self.core.queue.push(other);
                            break;
                        }
                        None => break,
                    }
                }
                self.core.stats.events += self.batch_buf.len() as u64;
                self.core.stats.batches += 1;
                self.core.stats.batched_msgs += self.batch_buf.len() as u64;
                let mut ctx = Ctx {
                    core: &mut self.core,
                    me: to,
                };
                self.actors[idx].on_batch(&mut ctx, &mut self.batch_buf);
                self.batch_buf.clear();
                return true;
            }
        }
        self.dispatch_event(ev.payload);
        true
    }

    /// Hand one event's payload to its actor (per-message path; the batch
    /// coalescing above is the only other dispatch site). Shared by
    /// [`Simulation::step`] and [`Simulation::step_chosen`] so the two
    /// execution orders differ only in *which* event runs, never in how.
    fn dispatch_event(&mut self, payload: Payload<A::Msg>) {
        match payload {
            Payload::Deliver { to, from, msg } => {
                let idx = to.index() - self.core.local_base as usize;
                assert!(idx < self.actors.len(), "message to unknown actor {to}");
                self.core.stats.events += 1;
                let mut ctx = Ctx {
                    core: &mut self.core,
                    me: to,
                };
                self.actors[idx].on_message(&mut ctx, from, msg);
            }
            Payload::Timer { node, token } => {
                self.core.stats.events += 1;
                self.core.stats.timers += 1;
                let idx = node.index() - self.core.local_base as usize;
                let mut ctx = Ctx {
                    core: &mut self.core,
                    me: node,
                };
                self.actors[idx].on_timer(&mut ctx, token);
            }
            Payload::Crash { node, until } => {
                self.core.stats.events += 1;
                self.core.stats.crashes += 1;
                self.purge_for_crash(node, until);
                self.core.down.insert(node);
                let idx = node.index() - self.core.local_base as usize;
                let mut ctx = Ctx {
                    core: &mut self.core,
                    me: node,
                };
                self.actors[idx].on_crash(&mut ctx);
            }
            Payload::Restart { node } => {
                self.core.stats.events += 1;
                self.core.down.remove(&node);
                let idx = node.index() - self.core.local_base as usize;
                let mut ctx = Ctx {
                    core: &mut self.core,
                    me: node,
                };
                self.actors[idx].on_restart(&mut ctx);
            }
        }
    }

    /// The pending events an external [`Scheduler`] may pick from, sorted
    /// by `(at, seq)` — index 0 is the event [`Simulation::step`] would
    /// run. Calls [`Actor::on_start`] first if needed, so the initial set
    /// already contains the actors' start-up timers and sends.
    ///
    /// Two causality guards are applied:
    ///
    /// * for each node, only its earliest-sequenced pending crash-lifecycle
    ///   event (Crash/Restart) is exposed. Crash and restart events are
    ///   scheduled as a pair at construction; without the guard a scheduler
    ///   could run a restart before its crash, an ordering no real
    ///   execution exhibits;
    /// * deliveries and timers targeting a node that is currently *down*
    ///   (its Crash executed, its Restart still pending) are withheld — a
    ///   down node processes nothing. They become enabled again after the
    ///   restart, which the network is always free to emulate by delaying
    ///   delivery; without the guard a scheduler could feed messages into
    ///   the wiped pre-recovery state (and, worse, have the node WAL-log
    ///   their effects, corrupting the recovery it has not run yet).
    pub fn enabled_events(&mut self) -> Vec<EnabledEvent> {
        self.ensure_started();
        // First pass: the earliest lifecycle event per node.
        let mut first_lifecycle: BTreeMap<NodeId, u64> = BTreeMap::new();
        for e in self.core.queue.iter() {
            let node = match &e.payload {
                Payload::Crash { node, .. } | Payload::Restart { node } => *node,
                _ => continue,
            };
            let entry = first_lifecycle.entry(node).or_insert(e.seq);
            if e.seq < *entry {
                *entry = e.seq;
            }
        }
        let mut enabled: Vec<EnabledEvent> = self
            .core
            .queue
            .iter()
            .filter_map(|e| {
                let (kind, target, from) = match &e.payload {
                    Payload::Deliver { to, from, .. } => {
                        if self.core.down.contains(to) {
                            return None;
                        }
                        (EnabledKind::Deliver, *to, Some(*from))
                    }
                    Payload::Timer { node, .. } => {
                        if self.core.down.contains(node) {
                            return None;
                        }
                        (EnabledKind::Timer, *node, None)
                    }
                    Payload::Crash { node, .. } => {
                        if first_lifecycle.get(node) != Some(&e.seq) {
                            return None;
                        }
                        (EnabledKind::Crash, *node, None)
                    }
                    Payload::Restart { node } => {
                        if first_lifecycle.get(node) != Some(&e.seq) {
                            return None;
                        }
                        (EnabledKind::Restart, *node, None)
                    }
                };
                Some(EnabledEvent {
                    at: e.at,
                    seq: e.seq,
                    kind,
                    target,
                    from,
                })
            })
            .collect();
        enabled.sort_unstable_by_key(|e| (e.at, e.seq));
        enabled
    }

    /// Execute the pending event with sequence number `seq` (from
    /// [`Simulation::enabled_events`]), regardless of its position in time
    /// order. The clock is clamped forward (`now = max(now, at)`), so an
    /// event executed "late" runs at the already-advanced clock — virtual
    /// time never goes backwards. Returns `false` if no pending event has
    /// that sequence number.
    ///
    /// This is the model checker's execution primitive: delivery *order*
    /// becomes an explicit external choice while everything else (actor
    /// code, latency sampling, fault decisions) stays exactly as under
    /// [`Simulation::step`]. Batch coalescing does not apply — checked
    /// configurations run per-message (`SimConfig::batch == false`).
    pub fn step_chosen(&mut self, seq: u64) -> bool {
        self.ensure_started();
        if !self.core.chosen_mode {
            self.core.chosen_mode = true;
            // Time-window crash filtering is meaningless once the clock is
            // clamped; crash effects are driven by the executed Crash /
            // Restart events and the `down` set from here on (see
            // `Transport::disable_crash_windows`).
            self.core.transport.disable_crash_windows();
        }
        let events = std::mem::take(&mut self.core.queue).into_vec();
        let mut chosen = None;
        let mut rest = Vec::with_capacity(events.len());
        for e in events {
            if e.seq == seq && chosen.is_none() {
                chosen = Some(e);
            } else {
                rest.push(e);
            }
        }
        self.core.queue = BinaryHeap::from(rest);
        let Some(ev) = chosen else {
            return false;
        };
        if ev.at > self.core.now {
            self.core.now = ev.at;
        }
        self.dispatch_event(ev.payload);
        true
    }

    /// Drop the crashed node's in-flight inbox from the event heap: queued
    /// deliveries that would arrive inside the dead window (covers
    /// self-sends and injected messages, which bypass the transport's own
    /// crash filter) and *all* of its pending timers (timers are volatile
    /// state). Events keep their original sequence numbers, so the relative
    /// order of everything that survives is untouched.
    ///
    /// Under chosen-order execution deliveries are *kept*: the dead window
    /// is defined in scheduled time, which the clamped clock no longer
    /// tracks, so the in-flight inbox is withheld by the `down` set until
    /// the restart executes (delayed, not lost) instead of being guessed
    /// at. Timers are still purged — they are volatile state regardless of
    /// how the schedule is driven.
    fn purge_for_crash(&mut self, node: NodeId, until: SimTime) {
        let chosen_mode = self.core.chosen_mode;
        let events = std::mem::take(&mut self.core.queue).into_vec();
        let before = events.len();
        let kept: Vec<Event<A::Msg>> = events
            .into_iter()
            .filter(|e| match &e.payload {
                Payload::Deliver { to, .. } => chosen_mode || *to != node || e.at >= until,
                Payload::Timer { node: n, .. } => *n != node,
                Payload::Crash { .. } | Payload::Restart { .. } => true,
            })
            .collect();
        self.core.stats.crash_purged += (before - kept.len()) as u64;
        self.core.queue = BinaryHeap::from(kept);
    }

    /// Deliver externally received messages directly, bypassing the event
    /// heap. The threaded runtime drains its channel into `inbox` and
    /// hands one wakeup's worth here: messages are processed in `inbox`
    /// order, with each consecutive run addressed to the same actor handed
    /// to [`Actor::on_batch`] as one batch. Per-message accounting matches
    /// [`Simulation::inject_at`] followed by [`Simulation::step`], so
    /// batched and per-message drivers report comparable stats. `inbox` is
    /// drained but keeps its capacity for the driver to reuse.
    ///
    /// The caller must first run local events up to `at` (e.g. via
    /// [`Simulation::run_until`]); delivering ahead of pending earlier
    /// events would reorder the world.
    pub fn deliver_batch(&mut self, at: SimTime, inbox: &mut Vec<(NodeId, NodeId, A::Msg)>) {
        self.ensure_started();
        assert!(at >= self.core.now, "cannot deliver into the past");
        debug_assert!(
            self.next_event_at().is_none_or(|t| t >= at),
            "deliver_batch would leapfrog a pending local event"
        );
        self.core.now = at;
        let mut run_to: Option<NodeId> = None;
        for (from, to, msg) in inbox.drain(..) {
            if run_to != Some(to) {
                if let Some(prev) = run_to {
                    self.flush_batch(prev);
                }
                run_to = Some(to);
            }
            self.batch_buf.push((from, msg));
        }
        if let Some(prev) = run_to {
            self.flush_batch(prev);
        }
    }

    /// Hand the accumulated `batch_buf` to actor `to` as one batch.
    fn flush_batch(&mut self, to: NodeId) {
        let idx = to.index() - self.core.local_base as usize;
        assert!(idx < self.actors.len(), "message to unknown actor {to}");
        let n = self.batch_buf.len() as u64;
        self.core.stats.messages += n;
        *self.core.stats.messages_by_tag.entry("inject").or_insert(0) += n;
        self.core.stats.events += n;
        self.core.stats.batches += 1;
        self.core.stats.batched_msgs += n;
        let mut ctx = Ctx {
            core: &mut self.core,
            me: to,
        };
        self.actors[idx].on_batch(&mut ctx, &mut self.batch_buf);
        self.batch_buf.clear();
    }

    /// Drive the simulation through an external [`Scheduler`] until the
    /// queue drains, an actor requests a stop, or `max_steps` events have
    /// executed. Returns the number of events executed. With
    /// [`EarliestScheduler`] and `SimConfig::batch == false` this is
    /// bit-identical to [`Simulation::run_to_quiescence`].
    pub fn run_with_scheduler(&mut self, sched: &mut dyn Scheduler, max_steps: u64) -> u64 {
        let mut steps = 0;
        while steps < max_steps {
            if self.core.stop {
                self.core.stop = false;
                break;
            }
            let enabled = self.enabled_events();
            if enabled.is_empty() {
                break;
            }
            let idx = sched.choose(&enabled).min(enabled.len() - 1);
            self.step_chosen(enabled[idx].seq);
            steps += 1;
        }
        steps
    }

    /// Run until the queue drains, an actor requests a stop, or virtual time
    /// would exceed `time_cap`.
    pub fn run_to_quiescence(&mut self, time_cap: SimTime) -> QuiesceOutcome {
        self.ensure_started();
        loop {
            if self.core.stop {
                self.core.stop = false;
                return QuiesceOutcome::Stopped(self.core.now);
            }
            match self.core.queue.peek() {
                None => return QuiesceOutcome::Quiescent(self.core.now),
                Some(ev) if ev.at > time_cap => {
                    self.core.now = time_cap;
                    return QuiesceOutcome::TimeCapped(self.core.now);
                }
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Run all events with timestamps `<= until`, then set the clock to
    /// `until`. Pending later events remain queued.
    pub fn run_until(&mut self, until: SimTime) {
        self.ensure_started();
        while let Some(ev) = self.core.queue.peek() {
            if ev.at > until || self.core.stop {
                break;
            }
            self.step();
        }
        self.core.stop = false;
        if self.core.now < until {
            self.core.now = until;
        }
    }
}

impl<A: Actor> Simulation<A>
where
    A::Msg: Clone,
{
    /// Inject a message from the outside world (`from` is attributed as the
    /// sender), delivered through the transport after the configured
    /// latency (and subject to the fault plane, like any other send).
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: A::Msg) {
        self.core.send_from(from, to, msg, "inject");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong actor: replies to `n` with `n-1` until zero.
    struct Pinger {
        received: Vec<u64>,
        timer_tokens: Vec<u64>,
    }

    impl Pinger {
        fn new() -> Self {
            Pinger {
                received: Vec::new(),
                timer_tokens: Vec::new(),
            }
        }
    }

    impl Actor for Pinger {
        type Msg = u64;
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
            self.received.push(msg);
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64>, token: u64) {
            self.timer_tokens.push(token);
        }
    }

    fn two_pingers(seed: u64) -> Simulation<Pinger> {
        Simulation::new(vec![Pinger::new(), Pinger::new()], SimConfig::seeded(seed))
    }

    #[test]
    fn ping_pong_terminates() {
        let mut sim = two_pingers(1);
        sim.inject(NodeId(0), NodeId(1), 5);
        let out = sim.run_to_quiescence(SimTime::MAX);
        assert!(matches!(out, QuiesceOutcome::Quiescent(_)));
        let a = &sim.actors()[0];
        let b = &sim.actors()[1];
        assert_eq!(b.received, vec![5, 3, 1]);
        assert_eq!(a.received, vec![4, 2, 0]);
        assert_eq!(sim.stats().messages, 6); // inject + 5 replies
        assert_eq!(sim.stats().tagged("inject"), 1);
    }

    #[test]
    fn determinism_same_seed() {
        let run = |seed| {
            let mut sim = two_pingers(seed);
            sim.inject(NodeId(0), NodeId(1), 20);
            sim.run_to_quiescence(SimTime::MAX);
            sim.now()
        };
        assert_eq!(run(7), run(7));
        // different seed -> different jitter -> (almost surely) different end
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn time_cap_stops_early() {
        let mut sim = two_pingers(1);
        sim.inject_at(SimTime(1_000_000), NodeId(0), NodeId(1), 1);
        let out = sim.run_to_quiescence(SimTime(10));
        assert_eq!(out, QuiesceOutcome::TimeCapped(SimTime(10)));
        assert_eq!(sim.now(), SimTime(10));
    }

    #[test]
    fn run_until_leaves_future_events() {
        let mut sim = two_pingers(1);
        sim.inject_at(SimTime(50), NodeId(0), NodeId(1), 0);
        sim.inject_at(SimTime(500), NodeId(0), NodeId(1), 0);
        sim.run_until(SimTime(100));
        assert_eq!(sim.actors()[1].received.len(), 1);
        assert_eq!(sim.now(), SimTime(100));
        sim.run_to_quiescence(SimTime::MAX);
        assert_eq!(sim.actors()[1].received.len(), 2);
    }

    #[test]
    fn timers_fire_in_order() {
        struct T {
            fired: Vec<(u64, SimTime)>,
        }
        impl Actor for T {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.schedule(SimDuration::from_micros(30), 3);
                ctx.schedule(SimDuration::from_micros(10), 1);
                ctx.schedule(SimDuration::from_micros(20), 2);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, token: u64) {
                self.fired.push((token, ctx.now()));
            }
        }
        let mut sim = Simulation::new(vec![T { fired: vec![] }], SimConfig::seeded(0));
        sim.run_to_quiescence(SimTime::MAX);
        let fired = &sim.actors()[0].fired;
        assert_eq!(
            fired,
            &vec![(1, SimTime(10)), (2, SimTime(20)), (3, SimTime(30)),]
        );
    }

    #[test]
    fn fifo_mode_preserves_order() {
        // With heavy jitter and many messages, non-FIFO reorders but FIFO
        // must preserve send order.
        struct Sink {
            got: Vec<u64>,
        }
        impl Actor for Sink {
            type Msg = u64;
            fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeId, msg: u64) {
                self.got.push(msg);
            }
        }
        struct Src;
        impl Actor for Src {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                for i in 0..100 {
                    ctx.send(NodeId(1), i);
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeId, _: u64) {}
        }

        // Erase the actor-type difference with an enum.
        enum Either {
            Src(Src),
            Sink(Sink),
        }
        impl Actor for Either {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                if let Either::Src(s) = self {
                    s.on_start(ctx)
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
                match self {
                    Either::Src(s) => s.on_message(ctx, from, msg),
                    Either::Sink(s) => s.on_message(ctx, from, msg),
                }
            }
        }

        let mk = |fifo: bool| {
            let cfg = SimConfig {
                fifo,
                latency: LatencyModel::Uniform {
                    min: SimDuration(1),
                    max: SimDuration(1000),
                },
                ..SimConfig::seeded(42)
            };
            let mut sim = Simulation::new(
                vec![Either::Src(Src), Either::Sink(Sink { got: vec![] })],
                cfg,
            );
            sim.run_to_quiescence(SimTime::MAX);
            match &sim.actors()[1] {
                Either::Sink(s) => s.got.clone(),
                _ => unreachable!(),
            }
        };
        let in_order: Vec<u64> = (0..100).collect();
        assert_eq!(mk(true), in_order, "fifo must deliver in send order");
        assert_ne!(mk(false), in_order, "jitter should reorder without fifo");
    }

    #[test]
    fn stop_request_halts_run() {
        struct Stopper;
        impl Actor for Stopper {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.schedule(SimDuration(5), 0);
                ctx.schedule(SimDuration(10), 1);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, token: u64) {
                if token == 0 {
                    ctx.request_stop();
                }
            }
        }
        let mut sim = Simulation::new(vec![Stopper], SimConfig::seeded(0));
        let out = sim.run_to_quiescence(SimTime::MAX);
        assert_eq!(out, QuiesceOutcome::Stopped(SimTime(5)));
        // The second timer still fires on resume.
        let out = sim.run_to_quiescence(SimTime::MAX);
        assert_eq!(out, QuiesceOutcome::Quiescent(SimTime(10)));
    }

    /// Records every message plus the size of each batch it arrived in.
    struct BatchSink {
        got: Vec<(NodeId, u64)>,
        batch_sizes: Vec<usize>,
    }
    impl Actor for BatchSink {
        type Msg = u64;
        fn on_message(&mut self, _: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
            self.got.push((from, msg));
        }
        fn on_batch(&mut self, ctx: &mut Ctx<'_, u64>, batch: &mut Vec<(NodeId, u64)>) {
            self.batch_sizes.push(batch.len());
            for (from, msg) in batch.drain(..) {
                self.on_message(ctx, from, msg);
            }
        }
    }

    #[test]
    fn batched_mode_identical_to_per_message() {
        // Jittery latency so the schedule is nontrivial; same seed both
        // ways. Batching may only change *how* deliveries are dispatched,
        // never what the actors observe.
        let run = |batch: bool| {
            let cfg = SimConfig {
                batch,
                latency: LatencyModel::Uniform {
                    min: SimDuration(1),
                    max: SimDuration(500),
                },
                ..SimConfig::seeded(99)
            };
            let mut sim = Simulation::new(
                vec![
                    BatchSink {
                        got: vec![],
                        batch_sizes: vec![],
                    },
                    BatchSink {
                        got: vec![],
                        batch_sizes: vec![],
                    },
                ],
                cfg,
            );
            for i in 0..200u64 {
                sim.inject_at(SimTime(i / 4), NodeId(1), NodeId(0), i);
            }
            sim.run_to_quiescence(SimTime::MAX);
            (
                sim.actors()[0].got.clone(),
                sim.stats().messages,
                sim.stats().events,
                sim.stats().timers,
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn batch_coalesces_same_time_runs() {
        let cfg = SimConfig {
            batch: true,
            latency: LatencyModel::Fixed(SimDuration(10)),
            ..SimConfig::seeded(0)
        };
        let mut sim = Simulation::new(
            vec![BatchSink {
                got: vec![],
                batch_sizes: vec![],
            }],
            cfg,
        );
        // Three messages injected for the same instant coalesce into one
        // on_batch; the straggler at a later time forms its own batch.
        for i in 0..3 {
            sim.inject_at(SimTime(5), NodeId(7), NodeId(0), i);
        }
        sim.inject_at(SimTime(6), NodeId(7), NodeId(0), 3);
        sim.run_to_quiescence(SimTime::MAX);
        let sink = &sim.actors()[0];
        assert_eq!(sink.batch_sizes, vec![3, 1]);
        assert_eq!(sink.got.len(), 4);
        assert_eq!(sim.stats().batches, 2);
        assert_eq!(sim.stats().batched_msgs, 4);
        assert_eq!(sim.stats().events, 4);
    }

    #[test]
    fn deliver_batch_groups_runs_and_reuses_buffers() {
        let mut sim = Simulation::new(
            vec![
                BatchSink {
                    got: vec![],
                    batch_sizes: vec![],
                },
                BatchSink {
                    got: vec![],
                    batch_sizes: vec![],
                },
            ],
            SimConfig::seeded(0),
        );
        let ext = NodeId(9);
        let mut inbox = vec![
            (ext, NodeId(0), 1u64),
            (ext, NodeId(0), 2),
            (ext, NodeId(1), 3),
            (ext, NodeId(0), 4),
        ];
        let cap = inbox.capacity();
        sim.deliver_batch(SimTime(42), &mut inbox);
        assert!(inbox.is_empty());
        assert_eq!(inbox.capacity(), cap, "driver buffer must be reusable");
        assert_eq!(sim.now(), SimTime(42));
        // Consecutive runs to the same actor batch together; the
        // interleaved send to actor 1 splits actor 0's deliveries.
        assert_eq!(sim.actors()[0].batch_sizes, vec![2, 1]);
        assert_eq!(sim.actors()[1].batch_sizes, vec![1]);
        assert_eq!(sim.actors()[0].got, vec![(ext, 1), (ext, 2), (ext, 4)]);
        assert_eq!(sim.stats().messages, 4);
        assert_eq!(sim.stats().tagged("inject"), 4);
        assert_eq!(sim.stats().events, 4);
        assert_eq!(sim.stats().batches, 3);
    }

    #[test]
    fn for_partition_decorrelates_seeds() {
        let base = SimConfig::seeded(1234);
        let a = base.for_partition(0);
        let b = base.for_partition(1);
        assert_eq!(a.seed, 1234, "partition 0 keeps the base seed");
        assert_ne!(a.seed, b.seed);
        assert_eq!(b.fifo, base.fifo);
        // Stable across calls: drivers on different threads must agree.
        assert_eq!(base.for_partition(1).seed, b.seed);
    }

    #[test]
    fn for_partition_decorrelates_fault_streams_independently() {
        let base = SimConfig::seeded(1234);
        let a = base.for_partition(0);
        let b = base.for_partition(1);
        let c = base.for_partition(2);
        assert_eq!(
            a.fault_stream, 0,
            "partition 0 keeps the historical fault derivation"
        );
        assert_ne!(b.fault_stream, 0);
        assert_ne!(b.fault_stream, c.fault_stream);
        // Independent axes: the fault-stream selector must not be a
        // function of the (partition-mixed) delivery seed.
        assert_ne!(b.fault_stream, b.seed ^ base.seed);
        assert_eq!(base.for_partition(1).fault_stream, b.fault_stream);
    }

    #[test]
    fn fault_plane_drops_and_duplicates_through_the_kernel() {
        use crate::transport::FaultPlane;
        struct Sink {
            got: Vec<u64>,
        }
        impl Actor for Sink {
            type Msg = u64;
            fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeId, msg: u64) {
                self.got.push(msg);
            }
        }
        let run = |faults: FaultPlane| {
            let cfg = SimConfig {
                faults,
                latency: LatencyModel::Fixed(SimDuration(10)),
                ..SimConfig::seeded(3)
            };
            let mut sim = Simulation::new(vec![Sink { got: vec![] }, Sink { got: vec![] }], cfg);
            for i in 0..1_000u64 {
                sim.inject(NodeId(0), NodeId(1), i);
            }
            sim.run_to_quiescence(SimTime::MAX);
            (sim.actors()[1].got.len(), sim.stats().clone())
        };

        let (clean_n, clean) = run(FaultPlane::default());
        assert_eq!(clean_n, 1_000);
        assert_eq!(clean.dropped + clean.duplicated + clean.reordered, 0);

        let (lossy_n, lossy) = run(FaultPlane::lossy(200_000, 100_000));
        assert!(lossy.dropped > 0 && lossy.duplicated > 0);
        assert_eq!(
            lossy_n as u64,
            1_000 - lossy.dropped + lossy.duplicated,
            "every non-dropped copy must be delivered"
        );
        // `messages` counts sends, not deliveries: identical either way.
        assert_eq!(lossy.messages, clean.messages);
    }

    #[test]
    fn fault_rng_is_decorrelated_from_latency_stream() {
        // Same seed, jittery latency: the delivery schedule of the
        // *surviving* messages must be unchanged by enabling faults,
        // because fault decisions draw from their own stream.
        struct Sink {
            got: Vec<(SimTime, u64)>,
        }
        impl Actor for Sink {
            type Msg = u64;
            fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _: NodeId, msg: u64) {
                self.got.push((ctx.now(), msg));
            }
        }
        let run = |faults: crate::transport::FaultPlane| {
            let cfg = SimConfig {
                faults,
                latency: LatencyModel::Uniform {
                    min: SimDuration(1),
                    max: SimDuration(900),
                },
                ..SimConfig::seeded(17)
            };
            let mut sim = Simulation::new(vec![Sink { got: vec![] }, Sink { got: vec![] }], cfg);
            for i in 0..300u64 {
                sim.inject(NodeId(0), NodeId(1), i);
            }
            sim.run_to_quiescence(SimTime::MAX);
            sim.actors()[1].got.clone()
        };
        let clean = run(crate::transport::FaultPlane::default());
        let lossy = run(crate::transport::FaultPlane::lossy(150_000, 0));
        let surviving: Vec<_> = clean
            .iter()
            .filter(|(_, m)| lossy.iter().any(|(_, lm)| lm == m))
            .cloned()
            .collect();
        assert_eq!(
            surviving, lossy,
            "surviving messages must keep their no-fault delivery times"
        );
        assert!(lossy.len() < clean.len());
    }

    #[test]
    fn crash_purges_inbox_and_timers_then_restarts() {
        use crate::transport::NodeCrash;
        #[derive(Default)]
        struct C {
            got: Vec<u64>,
            timers_fired: Vec<u64>,
            crashes: u64,
            restarts: u64,
        }
        impl Actor for C {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                if ctx.me() == NodeId(1) {
                    ctx.schedule(SimDuration(150), 7); // inside the dead window
                    ctx.schedule(SimDuration(250), 8); // after restart: still volatile
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeId, msg: u64) {
                self.got.push(msg);
            }
            fn on_timer(&mut self, _: &mut Ctx<'_, u64>, token: u64) {
                self.timers_fired.push(token);
            }
            fn on_crash(&mut self, _: &mut Ctx<'_, u64>) {
                self.got.clear(); // volatile state dies
                self.crashes += 1;
            }
            fn on_restart(&mut self, _: &mut Ctx<'_, u64>) {
                self.restarts += 1;
            }
        }
        let cfg = SimConfig {
            faults: FaultPlane {
                crashes: vec![NodeCrash {
                    node: NodeId(1),
                    at: SimTime(100),
                    restart_after: SimDuration(100),
                }],
                ..FaultPlane::default()
            },
            ..SimConfig::seeded(0)
        };
        let mut sim = Simulation::new(vec![C::default(), C::default()], cfg);
        sim.inject_at(SimTime(50), NodeId(0), NodeId(1), 1); // before the crash
        sim.inject_at(SimTime(150), NodeId(0), NodeId(1), 2); // lost with the inbox
        sim.inject_at(SimTime(250), NodeId(0), NodeId(1), 3); // after restart
        sim.run_to_quiescence(SimTime::MAX);
        let c = &sim.actors()[1];
        assert_eq!(c.crashes, 1);
        assert_eq!(c.restarts, 1);
        assert_eq!(c.got, vec![3], "pre-crash state cleared, mid-window lost");
        assert!(c.timers_fired.is_empty(), "timers are volatile");
        assert_eq!(sim.stats().crashes, 1);
        assert_eq!(sim.stats().crash_purged, 3); // delivery@150 + both timers
    }

    /// Sink recording `(time, from, msg)` for schedule comparisons.
    #[derive(Default)]
    struct SchedSink {
        got: Vec<(SimTime, NodeId, u64)>,
    }
    impl Actor for SchedSink {
        type Msg = u64;
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
            self.got.push((ctx.now(), from, msg));
            if msg > 0 && msg % 2 == 1 {
                ctx.send(from, msg - 1);
            }
        }
    }

    #[test]
    fn earliest_scheduler_is_bit_identical() {
        // Jittery latency + replies so the schedule is nontrivial. The
        // default scheduler must reproduce run_to_quiescence exactly:
        // same deliveries at the same instants, same stats.
        let build = || {
            let cfg = SimConfig {
                latency: LatencyModel::Uniform {
                    min: SimDuration(1),
                    max: SimDuration(700),
                },
                ..SimConfig::seeded(2024)
            };
            let mut sim = Simulation::new(vec![SchedSink::default(), SchedSink::default()], cfg);
            for i in 0..40u64 {
                sim.inject(NodeId(0), NodeId(1), i);
            }
            sim
        };
        let mut a = build();
        a.run_to_quiescence(SimTime::MAX);
        let mut b = build();
        let mut sched = EarliestScheduler;
        b.run_with_scheduler(&mut sched, u64::MAX);
        assert_eq!(a.actors()[0].got, b.actors()[0].got);
        assert_eq!(a.actors()[1].got, b.actors()[1].got);
        assert_eq!(a.now(), b.now());
        assert_eq!(a.stats().messages, b.stats().messages);
        assert_eq!(a.stats().events, b.stats().events);
        assert_eq!(a.stats().timers, b.stats().timers);
    }

    #[test]
    fn step_chosen_reorders_and_clamps_time() {
        let cfg = SimConfig {
            latency: LatencyModel::Fixed(SimDuration(10)),
            ..SimConfig::seeded(0)
        };
        let mut sim = Simulation::new(vec![SchedSink::default()], cfg);
        sim.inject_at(SimTime(10), NodeId(5), NodeId(0), 2);
        sim.inject_at(SimTime(20), NodeId(5), NodeId(0), 4);
        let enabled = sim.enabled_events();
        assert_eq!(enabled.len(), 2);
        assert_eq!(enabled[0].at, SimTime(10));
        assert_eq!(enabled[0].kind, EnabledKind::Deliver);
        // Execute the later event first: the clock jumps to 20 and the
        // earlier event then runs "late" at the clamped clock.
        assert!(sim.step_chosen(enabled[1].seq));
        assert!(sim.step_chosen(enabled[0].seq));
        assert!(sim.enabled_events().is_empty());
        assert_eq!(
            sim.actors()[0].got,
            vec![(SimTime(20), NodeId(5), 4), (SimTime(20), NodeId(5), 2)]
        );
        // Unknown seq is refused, not a panic.
        assert!(!sim.step_chosen(999));
    }

    #[test]
    fn enabled_events_guard_crash_lifecycle_order() {
        use crate::transport::NodeCrash;
        let cfg = SimConfig {
            faults: FaultPlane {
                crashes: vec![NodeCrash {
                    node: NodeId(0),
                    at: SimTime(100),
                    restart_after: SimDuration(50),
                }],
                ..FaultPlane::default()
            },
            ..SimConfig::seeded(0)
        };
        let mut sim = Simulation::new(vec![SchedSink::default()], cfg);
        let enabled = sim.enabled_events();
        // The restart is pending but masked until the crash has executed.
        assert_eq!(enabled.len(), 1);
        assert_eq!(enabled[0].kind, EnabledKind::Crash);
        assert!(sim.step_chosen(enabled[0].seq));
        let enabled = sim.enabled_events();
        assert_eq!(enabled.len(), 1);
        assert_eq!(enabled[0].kind, EnabledKind::Restart);
    }

    #[test]
    fn trace_records_lines() {
        struct Tracer;
        impl Actor for Tracer {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                assert!(ctx.tracing());
                ctx.trace(|| "hello".to_string());
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
        }
        let mut sim = Simulation::new(vec![Tracer], SimConfig::seeded(0));
        sim.enable_trace();
        sim.run_to_quiescence(SimTime::MAX);
        let trace = sim.take_trace().unwrap();
        assert_eq!(trace.lines().len(), 1);
        assert_eq!(trace.lines()[0].text, "hello");
    }
}
