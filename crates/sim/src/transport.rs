//! The unified transport layer: every policy decision about message
//! delivery — latency, per-link FIFO, and the injectable fault plane —
//! lives here, and only here.
//!
//! Two drivers share this code path:
//!
//! * the discrete-event kernel ([`crate::Simulation`]) calls
//!   [`Transport::plan`] from its send path and schedules the returned
//!   delivery instants on the event heap;
//! * the real-thread runtime (`threev-runtime`) builds a transport in
//!   *wire mode* ([`Transport::wire`]) per sending thread: the crossbeam
//!   channel is the link (so no virtual latency is added), but drop /
//!   duplicate / delay / partition / pause decisions are made by the same
//!   [`Transport::plan_wire`] logic before a message touches the channel.
//!
//! # The fault plane
//!
//! [`FaultPlane`] configures deterministic, seed-driven message faults:
//! per-link drop and duplication (parts-per-million), delay spikes,
//! time-windowed link partitions, and node pauses (a node whose inbox
//! freezes for a window: every message addressed to it is held until the
//! window closes). Faults are scoped by [`FaultScope`], which is how tests
//! confine loss to the 3V *control plane* (coordinator links) while the
//! data plane stays lossless — the regime the paper's asynchrony claim is
//! actually about.
//!
//! Two determinism rules keep the no-fault path bit-identical to the
//! pre-transport kernel:
//!
//! 1. base latency is always sampled from the **kernel's** RNG, in exactly
//!    the same cases as before (one draw per non-self send), so the event
//!    schedule with faults disabled is unchanged for a given seed;
//! 2. fault decisions come from a **separate** RNG (derived from the seed)
//!    that is consulted only when the fault plane is active on the link,
//!    so enabling faults on one link does not perturb latency draws
//!    elsewhere.
//!
//! Self-sends (`from == to`) are local hand-offs, not network links; the
//! fault plane never applies to them.

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use threev_model::NodeId;

use crate::kernel::SimConfig;
use crate::network::LatencyModel;
use crate::time::{SimDuration, SimTime};

/// Seed decorrelation constant for the fault RNG (splitmix64 increment).
const FAULT_SEED_SALT: u64 = 0x5EED_FA17_9E37_79B9;

/// Which links a [`FaultPlane`]'s probabilistic faults apply to.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum FaultScope {
    /// Every link between distinct actors.
    #[default]
    AllLinks,
    /// Only links with this actor as sender or receiver.
    Node(NodeId),
    /// Only the listed directed links.
    Links(Vec<(NodeId, NodeId)>),
}

impl FaultScope {
    /// Does the scope cover the directed link `from → to`?
    pub fn covers(&self, from: NodeId, to: NodeId) -> bool {
        match self {
            FaultScope::AllLinks => true,
            FaultScope::Node(n) => from == *n || to == *n,
            FaultScope::Links(links) => links.contains(&(from, to)),
        }
    }
}

/// A temporary bidirectional link partition: messages sent on the link in
/// `[from, until)` are dropped. Judged at *send* time, so the window is
/// deterministic under both drivers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkPartition {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

/// A node pause: the node stops draining its inbox during `[from, until)`.
/// Modelled at the transport as delivery clamping — any message that would
/// arrive inside the window is held and delivered at `until` (in send
/// order), which is observationally what a frozen inbox does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodePause {
    /// The paused node.
    pub node: NodeId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive); held messages deliver here.
    pub until: SimTime,
}

/// A node crash: at `at` the node loses all volatile state (store, counters,
/// version variables, in-flight inbox) and is dead until `at +
/// restart_after`, when it restarts and recovers from its durable log.
/// Messages sent by the node while dead do not exist; messages *delivered*
/// into the dead window are lost with the inbox. Both judgements are
/// structural (window-based, no RNG draw), so a crashes-only fault plane
/// leaves every latency and fault draw identical to the clean run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeCrash {
    /// The crashing node.
    pub node: NodeId,
    /// Crash instant (volatile state is lost here).
    pub at: SimTime,
    /// Dead-window length; the node restarts at `at + restart_after`.
    pub restart_after: SimDuration,
}

impl NodeCrash {
    /// First instant the node is alive again.
    pub fn until(&self) -> SimTime {
        self.at + self.restart_after
    }
}

/// Deterministic, seed-driven message-fault configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlane {
    /// Probability (parts per million) that a message is dropped.
    pub drop_ppm: u32,
    /// Probability (ppm) that a message is delivered twice; the duplicate
    /// arrives shortly after the original.
    pub dup_ppm: u32,
    /// Probability (ppm) that a message suffers a delay spike.
    pub delay_ppm: u32,
    /// Extra latency added on a delay spike.
    pub delay_spike: SimDuration,
    /// Which links the probabilistic faults above apply to.
    pub scope: FaultScope,
    /// Time-windowed link partitions (always in effect on their links,
    /// regardless of `scope`).
    pub partitions: Vec<LinkPartition>,
    /// Time-windowed node pauses (likewise independent of `scope`).
    pub pauses: Vec<NodePause>,
    /// Node crash-restart events (likewise independent of `scope`).
    pub crashes: Vec<NodeCrash>,
}

impl Default for FaultPlane {
    fn default() -> Self {
        FaultPlane {
            drop_ppm: 0,
            dup_ppm: 0,
            delay_ppm: 0,
            delay_spike: SimDuration::from_millis(2),
            scope: FaultScope::AllLinks,
            partitions: Vec::new(),
            pauses: Vec::new(),
            crashes: Vec::new(),
        }
    }
}

impl FaultPlane {
    /// A drop + duplication plane at the given rates (scope: all links).
    pub fn lossy(drop_ppm: u32, dup_ppm: u32) -> Self {
        FaultPlane {
            drop_ppm,
            dup_ppm,
            ..FaultPlane::default()
        }
    }

    /// Is any fault configured at all? When `false`, the transport takes a
    /// fast path that provably cannot drop, duplicate, delay, or reorder.
    pub fn is_active(&self) -> bool {
        self.drop_ppm > 0
            || self.dup_ppm > 0
            || self.delay_ppm > 0
            || !self.partitions.is_empty()
            || !self.pauses.is_empty()
            || !self.crashes.is_empty()
    }

    /// Is `node` inside a crash dead-window at `at`?
    pub fn crashed(&self, node: NodeId, at: SimTime) -> bool {
        self.crashes
            .iter()
            .any(|c| c.node == node && at >= c.at && at < c.until())
    }

    /// Is the directed link inside a partition window at `now`?
    fn partitioned(&self, from: NodeId, to: NodeId, now: SimTime) -> bool {
        self.partitions.iter().any(|p| {
            ((p.a == from && p.b == to) || (p.a == to && p.b == from))
                && now >= p.from
                && now < p.until
        })
    }

    /// If delivering to `node` at `at` lands inside a pause window, the
    /// time the window releases; `None` otherwise.
    pub fn pause_release(&self, node: NodeId, at: SimTime) -> Option<SimTime> {
        self.pauses
            .iter()
            .filter(|p| p.node == node && at >= p.from && at < p.until)
            .map(|p| p.until)
            .max()
    }
}

/// Per-link delivery counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages handed to the transport on this link.
    pub sent: u64,
    /// Copies actually delivered (a duplicated message counts twice).
    pub delivered: u64,
    /// Messages dropped (loss or partition).
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Deliveries that overtook a fault-delayed copy on the same link.
    /// Counts only fault-plane-induced reordering — latency jitter alone
    /// never increments this, so it is provably zero with faults off.
    pub reordered: u64,
}

impl LinkStats {
    /// Accumulate `other` into `self`.
    pub fn add(&mut self, other: &LinkStats) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
    }
}

/// Per-link transport statistics for one driver instance.
#[derive(Clone, Debug, Default)]
pub struct TransportStats {
    links: BTreeMap<(NodeId, NodeId), LinkStats>,
}

impl TransportStats {
    /// Counters for one directed link (zeros if never used).
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkStats {
        self.links.get(&(from, to)).copied().unwrap_or_default()
    }

    /// Iterate over every `(link, counters)` pair.
    pub fn per_link(&self) -> impl Iterator<Item = (&(NodeId, NodeId), &LinkStats)> {
        self.links.iter()
    }

    /// Sum over all links.
    pub fn totals(&self) -> LinkStats {
        let mut t = LinkStats::default();
        for ls in self.links.values() {
            t.add(ls);
        }
        t
    }

    /// Accumulate another instance (used when merging per-thread stats).
    pub fn merge(&mut self, other: &TransportStats) {
        for (link, ls) in &other.links {
            self.links.entry(*link).or_default().add(ls);
        }
    }
}

/// The transport's verdict on one message: up to two delivery instants
/// (original and duplicate) plus the fault-accounting flags.
#[derive(Clone, Copy, Debug)]
pub struct Plan {
    /// Delivery time of the original copy; `None` = dropped.
    pub first: Option<SimTime>,
    /// Delivery time of a duplicate copy, when one was injected.
    pub dup: Option<SimTime>,
    /// The message was dropped (loss or partition).
    pub dropped: bool,
    /// A duplicate copy was injected.
    pub duplicated: bool,
    /// Deliveries in this plan that overtake a fault-delayed copy.
    pub reordered: u64,
}

/// The single delivery-policy engine shared by both drivers.
pub struct Transport {
    latency: LatencyModel,
    local_latency: SimDuration,
    fifo: bool,
    faults: FaultPlane,
    /// Fault-decision RNG, decorrelated from the kernel RNG so enabling
    /// faults never perturbs the latency draw sequence.
    fault_rng: SmallRng,
    fifo_floor: BTreeMap<(NodeId, NodeId), SimTime>,
    /// Per link: latest scheduled delivery among fault-delayed copies.
    /// A later send delivered earlier than this overtook one — that is
    /// the only reordering the fault plane is charged with.
    delayed_high: BTreeMap<(NodeId, NodeId), SimTime>,
    stats: TransportStats,
    /// Wire mode (real-thread runtime): the channel is the link, so no
    /// base latency is sampled and FIFO is the channel's own property.
    wire: bool,
}

impl Transport {
    /// Transport for the discrete-event kernel.
    pub fn new(cfg: &SimConfig) -> Self {
        Self::build(cfg, false)
    }

    /// Transport in wire mode for a real-thread driver: zero base latency
    /// (the channel carries the message), faults still apply.
    pub fn wire(cfg: &SimConfig) -> Self {
        Self::build(cfg, true)
    }

    fn build(cfg: &SimConfig, wire: bool) -> Self {
        Transport {
            latency: cfg.latency,
            local_latency: cfg.local_latency,
            fifo: cfg.fifo && !wire,
            faults: cfg.faults.clone(),
            // The fault seed mixes the salt *and* the partition-local
            // fault-stream selector (zero outside sharded runs), so
            // partition fault streams decorrelate independently of the
            // delivery streams. `fault_stream == 0` keeps the historical
            // derivation bit-for-bit.
            fault_rng: SmallRng::seed_from_u64(cfg.seed ^ FAULT_SEED_SALT ^ cfg.fault_stream),
            fifo_floor: BTreeMap::new(),
            delayed_high: BTreeMap::new(),
            stats: TransportStats::default(),
            wire,
        }
    }

    /// Per-link statistics so far.
    pub fn stats(&self) -> &TransportStats {
        &self.stats
    }

    /// The configured fault plane (read access).
    pub fn faults(&self) -> &FaultPlane {
        &self.faults
    }

    /// Forget the configured crash dead-windows. Under chosen-order
    /// execution the clock is clamped, so "is `at` inside the window?" no
    /// longer corresponds to "had the crash happened?" — the kernel tracks
    /// crash state by *executed* Crash/Restart events instead and withholds
    /// a down node's deliveries until its restart. Messages in flight
    /// across the dead window are thereby delayed, not lost: a behaviour
    /// the reordering network is always allowed to exhibit.
    pub fn disable_crash_windows(&mut self) {
        self.faults.crashes.clear();
    }

    /// Plan delivery of one message under the kernel driver. `rng` is the
    /// kernel RNG; exactly one latency draw is taken for non-self sends
    /// (none for self-sends), matching the historical kernel behaviour so
    /// no-fault schedules are bit-identical across the refactor.
    pub fn plan<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        to: NodeId,
        now: SimTime,
        rng: &mut R,
    ) -> Plan {
        let base = if to == from {
            self.local_latency
        } else {
            self.latency.sample(rng)
        };
        self.plan_with_base(from, to, now, base)
    }

    /// Plan delivery of one message in wire mode (no base latency).
    pub fn plan_wire(&mut self, from: NodeId, to: NodeId, now: SimTime) -> Plan {
        debug_assert!(self.wire, "plan_wire is for wire-mode transports");
        self.plan_with_base(from, to, now, SimDuration::ZERO)
    }

    fn plan_with_base(
        &mut self,
        from: NodeId,
        to: NodeId,
        now: SimTime,
        base: SimDuration,
    ) -> Plan {
        let link = (from, to);
        self.stats.links.entry(link).or_default().sent += 1;
        // Self-links are local hand-offs; the fault plane never applies.
        let faulty = from != to && self.faults.is_active();
        if !faulty {
            return self.clean_delivery(link, now + base);
        }

        // Partitions, pauses, and crashes are structural (window-based) and
        // apply to their links/nodes regardless of the probabilistic scope.
        if self.faults.partitioned(from, to, now) || self.faults.crashed(from, now) {
            self.stats.links.entry(link).or_default().dropped += 1;
            return Plan {
                first: None,
                dup: None,
                dropped: true,
                duplicated: false,
                reordered: 0,
            };
        }
        let scoped = self.faults.scope.covers(from, to);
        if scoped && self.roll(self.faults.drop_ppm) {
            self.stats.links.entry(link).or_default().dropped += 1;
            return Plan {
                first: None,
                dup: None,
                dropped: true,
                duplicated: false,
                reordered: 0,
            };
        }

        let mut at = now + base;
        let mut fault_delayed = false;
        if scoped && self.roll(self.faults.delay_ppm) {
            at += self.faults.delay_spike;
            fault_delayed = true;
        }
        let mut at = self.fifo_clamp(link, at);
        if let Some(release) = self.faults.pause_release(to, at) {
            at = release;
            fault_delayed = true;
        }
        // A delivery landing inside the receiver's dead window is lost with
        // its inbox (the window is static config, so this is deterministic).
        if self.faults.crashed(to, at) {
            self.stats.links.entry(link).or_default().dropped += 1;
            return Plan {
                first: None,
                dup: None,
                dropped: true,
                duplicated: false,
                reordered: 0,
            };
        }

        let mut reordered = self.overtakes(link, at);
        if fault_delayed {
            let high = self.delayed_high.entry(link).or_insert(SimTime::ZERO);
            *high = (*high).max(at);
        }

        let dup = if scoped && self.roll(self.faults.dup_ppm) {
            // The duplicate trails the original by a short, seeded lag —
            // it is by construction a fault-delayed copy.
            let lag = SimDuration(1 + self.fault_rng.gen_range(0..500u64));
            let mut d = at + lag;
            if let Some(release) = self.faults.pause_release(to, d) {
                d = release;
            }
            if self.faults.crashed(to, d) {
                None // the duplicate lands in the receiver's dead window
            } else {
                reordered += self.overtakes(link, d);
                let high = self.delayed_high.entry(link).or_insert(SimTime::ZERO);
                *high = (*high).max(d);
                Some(d)
            }
        } else {
            None
        };

        let ls = self.stats.links.entry(link).or_default();
        ls.delivered += 1;
        if dup.is_some() {
            ls.delivered += 1;
            ls.duplicated += 1;
        }
        ls.reordered += reordered;
        Plan {
            first: Some(at),
            dup,
            dropped: false,
            duplicated: dup.is_some(),
            reordered,
        }
    }

    /// The historical no-fault delivery: FIFO clamp, nothing else. Cannot
    /// drop, duplicate, or count reordering (there are no fault-delayed
    /// copies on the link for it to overtake — `overtakes` still runs so
    /// that *normal* traffic overtaking a *faulted* copy is charged when
    /// faults are active on other messages of the same link).
    fn clean_delivery(&mut self, link: (NodeId, NodeId), at: SimTime) -> Plan {
        let at = self.fifo_clamp(link, at);
        let reordered = self.overtakes(link, at);
        let ls = self.stats.links.entry(link).or_default();
        ls.delivered += 1;
        ls.reordered += reordered;
        Plan {
            first: Some(at),
            dup: None,
            dropped: false,
            duplicated: false,
            reordered,
        }
    }

    /// Per-link FIFO enforcement, exactly the historical kernel rule: a
    /// delivery never lands before the link's floor, and each delivery
    /// raises the floor one microsecond past itself.
    fn fifo_clamp(&mut self, link: (NodeId, NodeId), mut at: SimTime) -> SimTime {
        if !self.fifo {
            return at;
        }
        let floor = self.fifo_floor.entry(link).or_insert(SimTime::ZERO);
        if at < *floor {
            at = *floor;
        }
        *floor = at + SimDuration::from_micros(1);
        at
    }

    /// 1 when a delivery at `at` overtakes a fault-delayed copy in flight
    /// on `link`, else 0.
    fn overtakes(&self, link: (NodeId, NodeId), at: SimTime) -> u64 {
        u64::from(self.delayed_high.get(&link).is_some_and(|h| at < *h))
    }

    fn roll(&mut self, ppm: u32) -> bool {
        ppm > 0 && self.fault_rng.gen_range(0u32..1_000_000) < ppm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    fn cfg_with(faults: FaultPlane) -> SimConfig {
        SimConfig {
            latency: LatencyModel::Fixed(SimDuration::from_micros(100)),
            faults,
            ..SimConfig::seeded(7)
        }
    }

    #[test]
    fn clean_transport_is_pure_latency() {
        let mut t = Transport::new(&cfg_with(FaultPlane::default()));
        let mut rng = SmallRng::seed_from_u64(1);
        for i in 0..100u64 {
            let p = t.plan(n(0), n(1), SimTime(i), &mut rng);
            assert_eq!(p.first, Some(SimTime(i + 100)));
            assert!(p.dup.is_none() && !p.dropped && p.reordered == 0);
        }
        let ls = t.stats().link(n(0), n(1));
        assert_eq!(ls.sent, 100);
        assert_eq!(ls.delivered, 100);
        assert_eq!(ls.dropped + ls.duplicated + ls.reordered, 0);
    }

    #[test]
    fn drop_rate_is_roughly_honoured() {
        let mut t = Transport::new(&cfg_with(FaultPlane::lossy(200_000, 0)));
        let mut rng = SmallRng::seed_from_u64(1);
        for i in 0..10_000u64 {
            t.plan(n(0), n(1), SimTime(i), &mut rng);
        }
        let ls = t.stats().link(n(0), n(1));
        assert_eq!(ls.sent, 10_000);
        assert!(
            (1_500..2_500).contains(&ls.dropped),
            "dropped={}",
            ls.dropped
        );
        assert_eq!(ls.delivered + ls.dropped, ls.sent);
    }

    #[test]
    fn duplicates_trail_their_original() {
        let mut t = Transport::new(&cfg_with(FaultPlane::lossy(0, 1_000_000)));
        let mut rng = SmallRng::seed_from_u64(1);
        let p = t.plan(n(0), n(1), SimTime(0), &mut rng);
        let (first, dup) = (p.first.unwrap(), p.dup.unwrap());
        assert!(dup > first);
        assert!(p.duplicated);
        let ls = t.stats().link(n(0), n(1));
        assert_eq!((ls.sent, ls.delivered, ls.duplicated), (1, 2, 1));
    }

    #[test]
    fn delay_spikes_cause_counted_reordering() {
        let mut t = Transport::new(&cfg_with(FaultPlane {
            delay_ppm: 500_000,
            delay_spike: SimDuration::from_millis(10),
            ..FaultPlane::default()
        }));
        let mut rng = SmallRng::seed_from_u64(1);
        let mut reordered = 0;
        for i in 0..1_000u64 {
            reordered += t.plan(n(0), n(1), SimTime(i), &mut rng).reordered;
        }
        assert!(reordered > 0, "fast copies must overtake spiked ones");
        assert_eq!(t.stats().link(n(0), n(1)).reordered, reordered);
    }

    #[test]
    fn fifo_suppresses_fault_reordering() {
        let mut t = Transport::new(&SimConfig {
            fifo: true,
            ..cfg_with(FaultPlane {
                delay_ppm: 500_000,
                delay_spike: SimDuration::from_millis(10),
                ..FaultPlane::default()
            })
        });
        let mut rng = SmallRng::seed_from_u64(1);
        let mut last = SimTime::ZERO;
        for i in 0..1_000u64 {
            let p = t.plan(n(0), n(1), SimTime(i), &mut rng);
            assert_eq!(p.reordered, 0);
            let at = p.first.unwrap();
            assert!(at > last, "fifo keeps send order");
            last = at;
        }
    }

    #[test]
    fn partition_window_drops_then_heals() {
        let mut t = Transport::new(&cfg_with(FaultPlane {
            partitions: vec![LinkPartition {
                a: n(0),
                b: n(1),
                from: SimTime(100),
                until: SimTime(200),
            }],
            ..FaultPlane::default()
        }));
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!t.plan(n(0), n(1), SimTime(50), &mut rng).dropped);
        assert!(t.plan(n(0), n(1), SimTime(150), &mut rng).dropped);
        assert!(t.plan(n(1), n(0), SimTime(150), &mut rng).dropped);
        assert!(!t.plan(n(0), n(2), SimTime(150), &mut rng).dropped);
        assert!(!t.plan(n(0), n(1), SimTime(200), &mut rng).dropped);
    }

    #[test]
    fn pause_clamps_delivery_to_window_end() {
        let mut t = Transport::new(&cfg_with(FaultPlane {
            pauses: vec![NodePause {
                node: n(1),
                from: SimTime(0),
                until: SimTime(10_000),
            }],
            ..FaultPlane::default()
        }));
        let mut rng = SmallRng::seed_from_u64(1);
        let p = t.plan(n(0), n(1), SimTime(0), &mut rng);
        assert_eq!(p.first, Some(SimTime(10_000)));
        // Traffic to other nodes is unaffected.
        let p = t.plan(n(0), n(2), SimTime(0), &mut rng);
        assert_eq!(p.first, Some(SimTime(100)));
    }

    #[test]
    fn crash_window_silences_the_node_then_heals() {
        let mut t = Transport::new(&cfg_with(FaultPlane {
            crashes: vec![NodeCrash {
                node: n(1),
                at: SimTime(1_000),
                restart_after: SimDuration(500),
            }],
            ..FaultPlane::default()
        }));
        let mut rng = SmallRng::seed_from_u64(1);
        // Before the crash: normal delivery (latency 100).
        assert!(!t.plan(n(0), n(1), SimTime(0), &mut rng).dropped);
        // Sent by the dead node: never exists.
        assert!(t.plan(n(1), n(0), SimTime(1_200), &mut rng).dropped);
        // Delivered into the dead window: lost with the inbox.
        assert!(t.plan(n(0), n(1), SimTime(1_200), &mut rng).dropped);
        // Sent just before the crash but *arriving* inside the window: lost.
        assert!(t.plan(n(0), n(1), SimTime(950), &mut rng).dropped);
        // After restart: heals in both directions.
        assert!(!t.plan(n(0), n(1), SimTime(1_500), &mut rng).dropped);
        assert!(!t.plan(n(1), n(0), SimTime(1_500), &mut rng).dropped);
        // Other links never affected.
        assert!(!t.plan(n(0), n(2), SimTime(1_200), &mut rng).dropped);
    }

    #[test]
    fn crash_windows_draw_nothing_from_either_rng() {
        // A crashes-only plane must keep both the kernel RNG stream and the
        // fault RNG untouched — that is what makes the crashed run
        // bit-identical to the clean run up to the crash instant.
        let draws = |faults: FaultPlane| {
            let mut t = Transport::new(&cfg_with(faults));
            let mut rng = SmallRng::seed_from_u64(9);
            for i in 0..200u64 {
                t.plan(n(0), n(1), SimTime(i * 10), &mut rng);
            }
            rng.next_u64()
        };
        assert_eq!(
            draws(FaultPlane::default()),
            draws(FaultPlane {
                crashes: vec![NodeCrash {
                    node: n(1),
                    at: SimTime(500),
                    restart_after: SimDuration(300),
                }],
                ..FaultPlane::default()
            })
        );
    }

    #[test]
    fn scope_confines_probabilistic_faults() {
        let mut t = Transport::new(&cfg_with(FaultPlane {
            drop_ppm: 1_000_000,
            scope: FaultScope::Node(n(5)),
            ..FaultPlane::default()
        }));
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(t.plan(n(0), n(5), SimTime(0), &mut rng).dropped);
        assert!(t.plan(n(5), n(0), SimTime(0), &mut rng).dropped);
        assert!(!t.plan(n(0), n(1), SimTime(0), &mut rng).dropped);
        let mut t = Transport::new(&cfg_with(FaultPlane {
            drop_ppm: 1_000_000,
            scope: FaultScope::Links(vec![(n(0), n(1))]),
            ..FaultPlane::default()
        }));
        assert!(t.plan(n(0), n(1), SimTime(0), &mut rng).dropped);
        assert!(!t.plan(n(1), n(0), SimTime(0), &mut rng).dropped);
    }

    #[test]
    fn self_sends_never_fault() {
        let mut t = Transport::new(&cfg_with(FaultPlane::lossy(1_000_000, 1_000_000)));
        let mut rng = SmallRng::seed_from_u64(1);
        for i in 0..100u64 {
            let p = t.plan(n(3), n(3), SimTime(i), &mut rng);
            assert!(!p.dropped && p.dup.is_none());
        }
    }

    #[test]
    fn kernel_rng_draw_sequence_is_fault_independent() {
        // The kernel RNG must see the same draw sequence whether or not
        // faults fire: latency comes from `rng`, faults from the internal
        // stream. Equal post-state of `rng` proves it.
        let draws = |faults: FaultPlane| {
            let mut t = Transport::new(&cfg_with(faults));
            let mut rng = SmallRng::seed_from_u64(9);
            for i in 0..200u64 {
                t.plan(n(0), n(1), SimTime(i), &mut rng);
            }
            rng.next_u64()
        };
        assert_eq!(
            draws(FaultPlane::default()),
            draws(FaultPlane::lossy(300_000, 300_000))
        );
    }

    #[test]
    fn partition_fault_streams_are_independent() {
        // The same lossy plane on two partitions of one sharded run must
        // make *different* drop decisions (independent fault streams), and
        // partition 0 must make exactly the decisions the base config
        // makes (historical derivation preserved).
        let decisions = |cfg: &SimConfig| {
            let mut t = Transport::new(cfg);
            let mut rng = SmallRng::seed_from_u64(1);
            (0..512u64)
                .map(|i| t.plan(n(0), n(1), SimTime(i), &mut rng).dropped)
                .collect::<Vec<bool>>()
        };
        let base = cfg_with(FaultPlane::lossy(300_000, 0));
        assert_eq!(decisions(&base), decisions(&base.for_partition(0)));
        let p1 = decisions(&base.for_partition(1));
        assert_ne!(decisions(&base), p1);
        assert_ne!(p1, decisions(&base.for_partition(2)));
    }

    #[test]
    fn wire_mode_has_no_base_latency() {
        let mut t = Transport::wire(&cfg_with(FaultPlane::default()));
        let p = t.plan_wire(n(0), n(1), SimTime(42));
        assert_eq!(p.first, Some(SimTime(42)));
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = TransportStats::default();
        let mut t = Transport::new(&cfg_with(FaultPlane::lossy(500_000, 0)));
        let mut rng = SmallRng::seed_from_u64(1);
        for i in 0..100u64 {
            t.plan(n(0), n(1), SimTime(i), &mut rng);
        }
        a.merge(t.stats());
        a.merge(t.stats());
        assert_eq!(a.totals().sent, 200);
        assert_eq!(a.link(n(0), n(1)).sent, 200);
    }
}
