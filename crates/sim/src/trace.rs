//! Human-readable event traces.
//!
//! The paper's Table 1 is an execution trace: a time-ordered list of
//! per-site events ("Tx i updates version 1 of data item A", "R1pq = 1", …).
//! Engines emit equivalent lines through [`crate::Ctx::trace`]; the
//! `exp_table1` harness renders the collected [`Trace`] in the paper's
//! three-column format and the replay test asserts on its contents.

use std::fmt;

use threev_model::NodeId;

use crate::time::SimTime;

/// One recorded trace line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceLine {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Actor that recorded the line.
    pub node: NodeId,
    /// Free-form text.
    pub text: String,
}

/// An ordered collection of trace lines.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    lines: Vec<TraceLine>,
}

impl Trace {
    /// Append a line.
    pub fn record(&mut self, at: SimTime, node: NodeId, text: String) {
        self.lines.push(TraceLine { at, node, text });
    }

    /// All lines in recording order (which is time order, since the kernel
    /// advances time monotonically).
    pub fn lines(&self) -> &[TraceLine] {
        &self.lines
    }

    /// Lines recorded by `node`.
    pub fn lines_for(&self, node: NodeId) -> impl Iterator<Item = &TraceLine> {
        self.lines.iter().filter(move |l| l.node == node)
    }

    /// Does any line contain `needle`?
    pub fn contains(&self, needle: &str) -> bool {
        self.lines.iter().any(|l| l.text.contains(needle))
    }

    /// Index of the first line containing `needle`, if any.
    pub fn position(&self, needle: &str) -> Option<usize> {
        self.lines.iter().position(|l| l.text.contains(needle))
    }

    /// Render in the paper's Table 1 style: one row per event, one column
    /// per site in `sites`, rows in time order.
    pub fn render_columns(&self, sites: &[(NodeId, &str)], width: usize) -> String {
        let mut out = String::new();
        // Header.
        out.push_str(&format!("{:>6} ", "TIME"));
        for (_, name) in sites {
            out.push_str(&format!("| {name:width$} "));
        }
        out.push('\n');
        out.push_str(&"-".repeat(7 + sites.len() * (width + 3)));
        out.push('\n');
        for (i, line) in self.lines.iter().enumerate() {
            out.push_str(&format!("{:>6} ", i + 1));
            for (node, _) in sites {
                if *node == line.node {
                    let mut t = line.text.clone();
                    if t.len() > width {
                        t.truncate(width);
                    }
                    out.push_str(&format!("| {t:width$} "));
                } else {
                    out.push_str(&format!("| {:width$} ", ""));
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for l in &self.lines {
            writeln!(f, "[{:>10}] {}: {}", l.at.to_string(), l.node, l.text)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::default();
        t.record(SimTime(1), NodeId(0), "tx i arrives".into());
        t.record(SimTime(2), NodeId(1), "subtx iq arrives".into());
        t.record(SimTime(3), NodeId(0), "R1pq = 1".into());
        t
    }

    #[test]
    fn query_helpers() {
        let t = sample();
        assert_eq!(t.lines().len(), 3);
        assert_eq!(t.lines_for(NodeId(0)).count(), 2);
        assert!(t.contains("R1pq"));
        assert!(!t.contains("R9"));
        assert_eq!(t.position("subtx"), Some(1));
        assert!(t.position("iq arrives").unwrap() < t.position("R1pq").unwrap());
    }

    #[test]
    fn renders_columns() {
        let t = sample();
        let s = t.render_columns(&[(NodeId(0), "SITE p"), (NodeId(1), "SITE q")], 20);
        assert!(s.contains("SITE p"));
        assert!(s.contains("tx i arrives"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2 + 3); // header + rule + 3 events
    }

    #[test]
    fn display_includes_time() {
        let s = sample().to_string();
        assert!(s.contains("n1: subtx iq arrives"));
    }
}
