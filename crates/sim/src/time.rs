//! Virtual time.
//!
//! Simulation time is a monotone `u64` count of microseconds since the start
//! of the run. The paper's example (Table 1) makes "no assumption … of the
//! existence of a global clock"; accordingly, engines never compare clock
//! readings across nodes — virtual time exists only for the kernel's event
//! ordering and for measurement.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant of virtual time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// Largest representable instant (used as "no deadline").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Whole microseconds.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Span since `earlier`; saturates to zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// From whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// From whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Whole microseconds.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiply by an integer factor.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }

    /// Divide by an integer factor.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(2);
        assert_eq!(t.as_micros(), 2_000);
        let t2 = t + SimDuration::from_micros(500);
        assert_eq!((t2 - t).as_micros(), 500);
        assert_eq!((t - t2).as_micros(), 0, "saturating");
        assert_eq!(SimDuration::from_secs(1).mul(3).as_secs_f64(), 3.0);
        assert_eq!(SimDuration::from_secs(3).div(3).as_secs_f64(), 1.0);
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimTime(50).to_string(), "50us");
        assert_eq!(SimTime(2_500).to_string(), "2.500ms");
        assert_eq!(SimTime(1_500_000).to_string(), "1.500s");
        assert_eq!(SimDuration(999).to_string(), "999us");
        assert_eq!(SimDuration(1_000_000).to_string(), "1.000s");
    }

    #[test]
    fn since_and_add_assign() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_micros(7);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_micros(7));
        let mut d = SimDuration::from_micros(1);
        d += SimDuration::from_micros(2);
        assert_eq!(d.as_micros(), 3);
    }
}
