//! Wire-codec contract for message types that can travel as bytes.
//!
//! The threaded runtime's framed delivery mode encodes each outbound
//! message **once**, shares the bytes (an `Arc<[u8]>`) across fault-plane
//! duplicates, and decodes at the receiver. Any `Actor::Msg` implementing
//! this trait can ride that path; the discrete-event kernel keeps passing
//! structured values and never requires it.
//!
//! Both directions are fallible by design: encoding can exceed a frame
//! bound, and decoding faces arbitrary bytes. Implementations must never
//! panic on malformed input — return `Err` and let the transport count
//! the frame as malformed.

/// Encode/decode a message to and from a self-contained byte frame.
pub trait WireCodec: Sized {
    /// Encode into one complete frame. The error is a static description
    /// of what could not be encoded (e.g. an oversized payload).
    fn encode_wire(&self) -> Result<Vec<u8>, &'static str>;

    /// Decode one complete frame. Must reject (never panic on)
    /// truncated, corrupt, or otherwise malformed input.
    fn decode_wire(bytes: &[u8]) -> Result<Self, &'static str>;
}
