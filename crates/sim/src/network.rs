//! Network latency models.
//!
//! The 3V protocol's interesting behaviour lives in message *reordering* and
//! *skew*: a descendant subtransaction can reach a node before the
//! advancement notice does (paper §2.3, time 12 vs time 16), or after the
//! node has already advanced (time 13). Latency models with jitter exercise
//! both races; a fixed-latency model gives FIFO-like behaviour for scripted
//! replays.

use rand::Rng;

use crate::time::SimDuration;

/// How long a message takes from one node to another.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly `SimDuration`. Links behave FIFO.
    Fixed(SimDuration),
    /// Latency drawn uniformly from `[min, max]`; messages may reorder.
    Uniform {
        /// Minimum latency.
        min: SimDuration,
        /// Maximum latency.
        max: SimDuration,
    },
    /// Mostly `base`, but a `spike_ppm`-per-million chance of taking
    /// `base * spike_factor` — models transient congestion / stragglers, the
    /// situation that makes manual versioning unsafe (paper §1: "one or both
    /// of the writes may be delayed beyond the version switchover date").
    Spiky {
        /// Common-case latency.
        base: SimDuration,
        /// Probability of a spike, in parts per million.
        spike_ppm: u32,
        /// Multiplier applied to `base` during a spike.
        spike_factor: u32,
    },
}

impl LatencyModel {
    /// A reasonable LAN-ish default: 200us..800us.
    pub fn lan() -> Self {
        LatencyModel::Uniform {
            min: SimDuration::from_micros(200),
            max: SimDuration::from_micros(800),
        }
    }

    /// A WAN-ish default: 5ms..25ms.
    pub fn wan() -> Self {
        LatencyModel::Uniform {
            min: SimDuration::from_millis(5),
            max: SimDuration::from_millis(25),
        }
    }

    /// Zero latency (useful for unit tests of pure logic).
    pub fn zero() -> Self {
        LatencyModel::Fixed(SimDuration::ZERO)
    }

    /// Sample one message latency.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { min, max } => {
                if max <= min {
                    min
                } else {
                    SimDuration(rng.gen_range(min.0..=max.0))
                }
            }
            LatencyModel::Spiky {
                base,
                spike_ppm,
                spike_factor,
            } => {
                if rng.gen_range(0u32..1_000_000) < spike_ppm {
                    base.mul(spike_factor as u64)
                } else {
                    base
                }
            }
        }
    }

    /// Mean latency of the model (used by reports).
    pub fn mean(&self) -> SimDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { min, max } => SimDuration((min.0 + max.0) / 2),
            LatencyModel::Spiky {
                base,
                spike_ppm,
                spike_factor,
            } => {
                let spike = base.0 as u128 * spike_factor as u128 * spike_ppm as u128;
                let normal = base.0 as u128 * (1_000_000 - spike_ppm as u128);
                SimDuration(((spike + normal) / 1_000_000) as u64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_constant() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = LatencyModel::Fixed(SimDuration::from_micros(100));
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_micros(100));
        }
        assert_eq!(m.mean(), SimDuration::from_micros(100));
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        let m = LatencyModel::Uniform {
            min: SimDuration(10),
            max: SimDuration(20),
        };
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!((10..=20).contains(&d.0));
        }
        assert_eq!(m.mean(), SimDuration(15));
    }

    #[test]
    fn degenerate_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let m = LatencyModel::Uniform {
            min: SimDuration(10),
            max: SimDuration(10),
        };
        assert_eq!(m.sample(&mut rng), SimDuration(10));
    }

    #[test]
    fn spiky_spikes_sometimes() {
        let mut rng = SmallRng::seed_from_u64(4);
        let m = LatencyModel::Spiky {
            base: SimDuration(100),
            spike_ppm: 500_000, // 50% for the test
            spike_factor: 10,
        };
        let mut spikes = 0;
        for _ in 0..1000 {
            if m.sample(&mut rng).0 == 1000 {
                spikes += 1;
            }
        }
        assert!((300..700).contains(&spikes), "spikes={spikes}");
        assert_eq!(m.mean(), SimDuration(550));
    }

    #[test]
    fn presets() {
        assert_eq!(LatencyModel::zero().mean(), SimDuration::ZERO);
        assert!(LatencyModel::wan().mean() > LatencyModel::lan().mean());
    }
}
