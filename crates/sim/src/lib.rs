//! Deterministic discrete-event simulation kernel.
//!
//! The protocol engines in this workspace are *sans-io* state machines: they
//! consume inputs (messages, timers) and emit outputs (sends, timer
//! requests). This crate provides the virtual-time driver for them:
//!
//! * [`time`] — virtual clock types ([`SimTime`], [`SimDuration`]);
//! * [`network`] — link latency models (fixed, uniform jitter, optional
//!   per-link FIFO enforcement);
//! * [`kernel`] — the event heap, the [`Actor`] trait, and the
//!   [`Simulation`] driver;
//! * [`transport`] — the unified delivery-policy layer (latency, FIFO, and
//!   the injectable fault plane) shared by this kernel and the real-thread
//!   runtime;
//! * [`trace`] — a human-readable event trace used to replay the paper's
//!   Table 1 line by line.
//!
//! Determinism: given the same actors, seed, and configuration, a simulation
//! produces bit-identical schedules. Message latencies are sampled from a
//! seeded RNG, and simultaneous events tie-break on a monotone sequence
//! number.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod codec;
pub mod kernel;
pub mod network;
pub mod time;
pub mod trace;
pub mod transport;

pub use codec::WireCodec;
pub use kernel::{
    Actor, Ctx, EarliestScheduler, EnabledEvent, EnabledKind, QuiesceOutcome, Scheduler, SimConfig,
    SimStats, Simulation,
};
pub use network::LatencyModel;
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceLine};
pub use transport::{
    FaultPlane, FaultScope, LinkPartition, LinkStats, NodeCrash, NodePause, Transport,
    TransportStats,
};
