//! Real-thread execution of the sans-io engines.
//!
//! The discrete-event simulator verifies the protocol; this crate runs the
//! **same actor code** on real OS threads for wall-clock measurements. Each
//! actor is hosted in a single-actor *partitioned* simulation
//! ([`threev_sim::Simulation::new_partition`]): its timers live in its
//! private event queue, virtual time is tied to the wall clock, and sends
//! to other actors leave through the partition outbox onto crossbeam
//! channels.
//!
//! Because an actor processes one message at a time on its own thread, the
//! local-serializability assumption of the paper (§3) holds exactly as it
//! does in the simulator — it is the same code path, scheduled by the OS
//! instead of the event heap.
//!
//! Two delivery modes are supported (see [`DeliveryMode`]). In the default
//! batched mode, each wakeup drains the whole channel backlog into a
//! reusable inbox and hands it to the actor through
//! [`threev_sim::Actor::on_batch`] — one heap-free kernel entry per wakeup
//! instead of one event-queue round-trip per message. Per-message mode
//! keeps the one-`inject_at`-per-message path; it exists as the baseline
//! the batching benchmark compares against, and as the reference behaviour
//! the equivalence tests pin batching to.
//!
//! Orthogonally, the channels can carry either structured messages
//! (cloned per hop, the historical behaviour) or **framed bytes**
//! ([`ThreadedRun::run_framed`]): each outbound message is encoded once
//! through [`threev_sim::WireCodec`] into an `Arc<[u8]>`, fault-plane
//! duplicates share the same allocation (a refcount bump instead of a
//! deep clone of the enum tree), and receivers decode the borrowed slice.
//! Malformed frames are counted and dropped, never panicked on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use threev_model::NodeId;
use threev_sim::{Actor, LinkStats, SimConfig, SimTime, Simulation, Transport, WireCodec};

/// How an actor thread feeds inbound messages to its engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryMode {
    /// Drain the channel backlog into one reusable buffer per wakeup and
    /// deliver it through `Actor::on_batch`, bypassing the event heap.
    Batched,
    /// Inject messages into the event heap one at a time (the historical
    /// behaviour; kept as the comparison baseline).
    PerMessage,
}

/// What travels on the inter-actor channels: either the message itself
/// (cloned per hop) or an encoded frame shared across duplicates. The
/// carrier is the *only* difference between the plain and framed runs —
/// routing, fault planning, and delivery are one code path.
trait Carrier<M>: Clone + Send + 'static {
    /// Package an outbound message. `None` means the message could not be
    /// encoded; the caller counts it and drops, mirroring a wire that
    /// rejects an oversized frame.
    fn pack(msg: M, codec_errors: &mut u64) -> Option<Self>;
    /// Unpackage an inbound carrier. `None` means the frame was
    /// malformed; the caller counts it and drops.
    fn unpack(self, codec_errors: &mut u64) -> Option<M>;
}

/// Identity carrier: the channel carries the structured message.
impl<M: Clone + Send + 'static> Carrier<M> for M {
    fn pack(msg: M, _codec_errors: &mut u64) -> Option<Self> {
        Some(msg)
    }
    fn unpack(self, _codec_errors: &mut u64) -> Option<M> {
        Some(self)
    }
}

/// Framed carrier: the channel carries one encoded frame. Cloning (for a
/// fault-plane duplicate) bumps a refcount instead of deep-cloning the
/// message.
#[derive(Clone)]
struct Framed(Arc<[u8]>);

impl<M: WireCodec + Send + 'static> Carrier<M> for Framed {
    fn pack(msg: M, codec_errors: &mut u64) -> Option<Self> {
        match msg.encode_wire() {
            Ok(bytes) => Some(Framed(Arc::from(bytes))),
            Err(_) => {
                *codec_errors += 1;
                None
            }
        }
    }
    fn unpack(self, codec_errors: &mut u64) -> Option<M> {
        match M::decode_wire(&self.0) {
            Ok(msg) => Some(msg),
            Err(_) => {
                *codec_errors += 1;
                None
            }
        }
    }
}

/// Runs a set of actors on one thread each, routing cross-actor messages
/// over channels, for a fixed wall-clock duration.
pub struct ThreadedRun;

/// Per-run report: wall time spent and per-actor message counts.
#[derive(Clone, Debug, Default)]
pub struct ThreadedReport {
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Messages processed per actor.
    pub messages_per_actor: Vec<u64>,
    /// `on_batch` invocations per actor (zero in per-message mode).
    pub batches_per_actor: Vec<u64>,
    /// Per-actor transport totals (wire sends plus local kernel sends):
    /// sent/delivered/dropped/duplicated/reordered. With the fault plane
    /// disabled the fault counters are provably zero — asserted by
    /// `driver_equivalence`.
    pub transport_per_actor: Vec<LinkStats>,
    /// Frames that failed to encode (counted at the sender) or decode
    /// (counted at the receiver) per actor. Always zero outside framed
    /// mode; zero in framed mode too unless bytes were corrupted.
    pub codec_errors_per_actor: Vec<u64>,
}

impl ThreadedRun {
    /// Run `actors` in the default batched delivery mode. See
    /// [`ThreadedRun::run_with`].
    pub fn run<A>(
        actors: Vec<A>,
        cfg: SimConfig,
        duration: Duration,
        drain: Duration,
    ) -> (Vec<A>, ThreadedReport)
    where
        A: Actor + Send + 'static,
        A::Msg: Send + Clone + 'static,
    {
        Self::run_with(actors, cfg, DeliveryMode::Batched, duration, drain)
    }

    /// Run `actors` (actor `i` gets `NodeId(i)`, its own thread, and its
    /// own seeded single-actor simulation) for `duration` of wall time,
    /// then a `drain` grace period with no new timer-driven work expected.
    /// Returns the actors (for record extraction) and a report.
    pub fn run_with<A>(
        actors: Vec<A>,
        cfg: SimConfig,
        mode: DeliveryMode,
        duration: Duration,
        drain: Duration,
    ) -> (Vec<A>, ThreadedReport)
    where
        A: Actor + Send + 'static,
        A::Msg: Send + Clone + 'static,
    {
        Self::run_carrier::<A, A::Msg>(actors, cfg, mode, duration, drain)
    }

    /// Run in framed-bytes mode with batched delivery: every inter-actor
    /// message is encoded once via [`WireCodec`], shipped as a shared
    /// byte frame, and decoded at the receiver. See [`ThreadedRun::run_framed_with`].
    pub fn run_framed<A>(
        actors: Vec<A>,
        cfg: SimConfig,
        duration: Duration,
        drain: Duration,
    ) -> (Vec<A>, ThreadedReport)
    where
        A: Actor + Send + 'static,
        A::Msg: Send + Clone + WireCodec + 'static,
    {
        Self::run_framed_with(actors, cfg, DeliveryMode::Batched, duration, drain)
    }

    /// Framed-bytes variant of [`ThreadedRun::run_with`]: the channels
    /// carry `Arc<[u8]>` frames instead of cloned message values.
    /// Messages that fail to encode or decode are counted in
    /// [`ThreadedReport::codec_errors_per_actor`] and dropped.
    pub fn run_framed_with<A>(
        actors: Vec<A>,
        cfg: SimConfig,
        mode: DeliveryMode,
        duration: Duration,
        drain: Duration,
    ) -> (Vec<A>, ThreadedReport)
    where
        A: Actor + Send + 'static,
        A::Msg: Send + Clone + WireCodec + 'static,
    {
        Self::run_carrier::<A, Framed>(actors, cfg, mode, duration, drain)
    }

    fn run_carrier<A, C>(
        actors: Vec<A>,
        cfg: SimConfig,
        mode: DeliveryMode,
        duration: Duration,
        drain: Duration,
    ) -> (Vec<A>, ThreadedReport)
    where
        A: Actor + Send + 'static,
        A::Msg: Send + Clone + 'static,
        C: Carrier<A::Msg>,
    {
        let n = actors.len();
        let mut senders: Vec<Sender<(NodeId, NodeId, C)>> = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<(NodeId, NodeId, C)>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let start = Instant::now();
        let deadline = duration + drain;

        let mut handles = Vec::with_capacity(n);
        for (i, actor) in actors.into_iter().enumerate() {
            let rx = receivers[i].clone();
            let routes = senders.clone();
            let cfg = cfg.for_partition(i);
            let handle = thread::spawn(move || {
                // The same Transport as the DES kernel, in wire mode: the
                // channel is the link (no virtual latency), but every
                // drop/duplicate/delay/partition/pause decision is made by
                // the shared policy engine before a message is routed.
                let mut transport = Transport::wire(&cfg);
                let mut sim = Simulation::new_partition(vec![actor], i as u16, u16::MAX, cfg);
                // Both buffers are reused across wakeups: after warm-up the
                // steady-state loop performs no allocation for routing.
                let mut inbox: Vec<(NodeId, NodeId, A::Msg)> = Vec::new();
                let mut outbox: Vec<(NodeId, NodeId, A::Msg)> = Vec::new();
                // Fault-delayed copies awaiting their wire delivery time.
                let mut held: Vec<(SimTime, NodeId, NodeId, C)> = Vec::new();
                let mut codec_errors: u64 = 0;
                loop {
                    let now = SimTime(start.elapsed().as_micros() as u64);
                    if start.elapsed() >= deadline {
                        break;
                    }
                    // Process everything due, route the fallout through the
                    // wire transport.
                    sim.run_until(now);
                    sim.drain_outbox(&mut outbox);
                    for (from, to, msg) in outbox.drain(..) {
                        let idx = to.index();
                        if idx >= routes.len() {
                            continue;
                        }
                        let plan = transport.plan_wire(from, to, now);
                        // Encode once; the duplicate shares the carrier.
                        let Some(carrier) = C::pack(msg, &mut codec_errors) else {
                            continue;
                        };
                        if let Some(at) = plan.dup {
                            held.push((at, from, to, carrier.clone()));
                        }
                        match plan.first {
                            Some(at) if at <= now => {
                                // A send can fail only during shutdown.
                                let _ = routes[idx].send((from, to, carrier));
                            }
                            Some(at) => held.push((at, from, to, carrier)),
                            None => {} // dropped by the fault plane
                        }
                    }
                    // Release held copies that have come due.
                    let mut h = 0;
                    while h < held.len() {
                        if held[h].0 <= now {
                            let (_, from, to, carrier) = held.swap_remove(h);
                            let _ = routes[to.index()].send((from, to, carrier));
                        } else {
                            h += 1;
                        }
                    }
                    // Sleep until the next local timer, the next held-copy
                    // release, or an inbound message.
                    let next_held = held.iter().map(|(at, ..)| *at).min();
                    let next = match (sim.next_event_at(), next_held) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                    let timeout = match next {
                        Some(t) if t <= now => Duration::ZERO,
                        Some(t) => Duration::from_micros(t.0 - now.0)
                            .min(deadline.saturating_sub(start.elapsed())),
                        None => {
                            Duration::from_millis(2).min(deadline.saturating_sub(start.elapsed()))
                        }
                    };
                    match rx.recv_timeout(timeout) {
                        Ok((first_from, first_to, first_carrier)) => {
                            let now = SimTime(start.elapsed().as_micros() as u64);
                            sim.set_now(now);
                            let at = sim.now().max(now);
                            // Own dead window: a crashed node has no inbox.
                            // Drain and drop everything queued; the local
                            // Crash/Restart events still fire via run_until.
                            if transport.faults().crashed(NodeId(i as u16), at) {
                                while rx.try_recv().is_ok() {}
                                sim.run_until(at);
                                continue;
                            }
                            match mode {
                                DeliveryMode::Batched => {
                                    // One wakeup = one batch: everything
                                    // queued right now, in channel order.
                                    // Malformed frames are counted and
                                    // dropped here, before the engine.
                                    if let Some(m) = first_carrier.unpack(&mut codec_errors) {
                                        inbox.push((first_from, first_to, m));
                                    }
                                    while let Ok((from, to, c)) = rx.try_recv() {
                                        if let Some(m) = c.unpack(&mut codec_errors) {
                                            inbox.push((from, to, m));
                                        }
                                    }
                                    // Fire timers that came due while
                                    // blocked, then hand over the batch.
                                    sim.run_until(at);
                                    sim.deliver_batch(at, &mut inbox);
                                }
                                DeliveryMode::PerMessage => {
                                    if let Some(m) = first_carrier.unpack(&mut codec_errors) {
                                        sim.inject_at(at, first_from, first_to, m);
                                    }
                                    // Drain the rest without blocking.
                                    while let Ok((from, to, c)) = rx.try_recv() {
                                        if let Some(m) = c.unpack(&mut codec_errors) {
                                            sim.inject_at(at, from, to, m);
                                        }
                                    }
                                }
                            }
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                // Final local flush.
                let now = SimTime(start.elapsed().as_micros() as u64);
                sim.run_until(now);
                let processed = sim.stats().events;
                let batches = sim.stats().batches;
                // Wire sends plus this partition's local (self) sends.
                let mut transport_totals = transport.stats().totals();
                transport_totals.add(&sim.transport_stats().totals());
                (
                    sim.into_actors().pop().expect("one actor"),
                    processed,
                    batches,
                    transport_totals,
                    codec_errors,
                )
            });
            handles.push(handle);
        }
        drop(senders);
        drop(receivers);

        let mut out_actors = Vec::with_capacity(n);
        let mut report = ThreadedReport {
            elapsed: Duration::ZERO,
            messages_per_actor: Vec::with_capacity(n),
            batches_per_actor: Vec::with_capacity(n),
            transport_per_actor: Vec::with_capacity(n),
            codec_errors_per_actor: Vec::with_capacity(n),
        };
        for h in handles {
            let (actor, processed, batches, transport_totals, codec_errors) =
                h.join().expect("actor thread panicked");
            out_actors.push(actor);
            report.messages_per_actor.push(processed);
            report.batches_per_actor.push(batches);
            report.transport_per_actor.push(transport_totals);
            report.codec_errors_per_actor.push(codec_errors);
        }
        report.elapsed = start.elapsed();
        (out_actors, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_sim::Ctx;

    /// Local test message: a newtype over the ping number so the framed
    /// tests can implement the foreign `WireCodec` trait for it.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    struct Ping(u64);

    impl WireCodec for Ping {
        fn encode_wire(&self) -> Result<Vec<u8>, &'static str> {
            Ok(self.0.to_le_bytes().to_vec())
        }
        fn decode_wire(bytes: &[u8]) -> Result<Self, &'static str> {
            let arr: [u8; 8] = bytes.try_into().map_err(|_| "ping frame must be 8 bytes")?;
            Ok(Ping(u64::from_le_bytes(arr)))
        }
    }

    /// Counter actor: node 0 fires N pings at node 1 on start; node 1
    /// echoes; node 0 counts echoes.
    struct Echo {
        send_initial: bool,
        peer: NodeId,
        received: u64,
        to_send: u64,
    }

    impl Actor for Echo {
        type Msg = Ping;
        fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
            if self.send_initial {
                for i in 0..self.to_send {
                    ctx.send(self.peer, Ping(i));
                }
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, Ping>, from: NodeId, msg: Ping) {
            self.received += 1;
            if !self.send_initial {
                ctx.send(from, msg); // echo
            }
        }
    }

    fn echo_pair() -> Vec<Echo> {
        vec![
            Echo {
                send_initial: true,
                peer: NodeId(1),
                received: 0,
                to_send: 500,
            },
            Echo {
                send_initial: false,
                peer: NodeId(0),
                received: 0,
                to_send: 0,
            },
        ]
    }

    #[test]
    fn threads_route_messages_both_ways() {
        let (actors, report) = ThreadedRun::run(
            echo_pair(),
            SimConfig::seeded(1),
            Duration::from_millis(300),
            Duration::from_millis(100),
        );
        assert_eq!(actors[1].received, 500, "all pings arrived");
        assert_eq!(actors[0].received, 500, "all echoes arrived");
        assert!(report.elapsed >= Duration::from_millis(300));
        assert_eq!(report.messages_per_actor.len(), 2);
        // Default mode is batched: wakeups happened, and no wakeup handled
        // more work than exists.
        let batches: u64 = report.batches_per_actor.iter().sum();
        assert!(batches > 0, "batched mode must report batches");
        assert!(batches <= 1000, "batches cannot exceed messages");
        // Identity carrier never produces codec errors.
        assert_eq!(report.codec_errors_per_actor, vec![0, 0]);
    }

    #[test]
    fn per_message_mode_delivers_everything_too() {
        let (actors, report) = ThreadedRun::run_with(
            echo_pair(),
            SimConfig::seeded(1),
            DeliveryMode::PerMessage,
            Duration::from_millis(300),
            Duration::from_millis(100),
        );
        assert_eq!(actors[1].received, 500);
        assert_eq!(actors[0].received, 500);
        assert_eq!(report.batches_per_actor, vec![0, 0]);
    }

    #[test]
    fn framed_mode_delivers_everything() {
        let (actors, report) = ThreadedRun::run_framed(
            echo_pair(),
            SimConfig::seeded(1),
            Duration::from_millis(300),
            Duration::from_millis(100),
        );
        assert_eq!(actors[1].received, 500, "all pings arrived framed");
        assert_eq!(actors[0].received, 500, "all echoes arrived framed");
        assert_eq!(
            report.codec_errors_per_actor,
            vec![0, 0],
            "well-formed frames never miscount"
        );
    }

    /// Timers must fire on the wall clock.
    struct Ticker {
        ticks: u64,
    }
    impl Actor for Ticker {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.schedule(threev_sim::SimDuration::from_millis(10), 0);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _: u64) {
            self.ticks += 1;
            ctx.schedule(threev_sim::SimDuration::from_millis(10), 0);
        }
    }

    #[test]
    fn no_fault_run_reports_zero_fault_counters() {
        let (_, report) = ThreadedRun::run(
            echo_pair(),
            SimConfig::seeded(5),
            Duration::from_millis(200),
            Duration::from_millis(50),
        );
        let mut totals = LinkStats::default();
        for t in &report.transport_per_actor {
            totals.add(t);
        }
        assert!(totals.sent >= 1000, "sent={}", totals.sent);
        assert_eq!(
            (totals.dropped, totals.duplicated, totals.reordered),
            (0, 0, 0)
        );
    }

    #[test]
    fn fault_plane_applies_on_real_threads() {
        // Heavy loss on the wire: the echo exchange must lose messages, and
        // the loss must be visible in the transport counters — the same
        // fault plane driving the DES kernel drives the threaded wire.
        let mut cfg = SimConfig::seeded(5);
        cfg.faults = threev_sim::FaultPlane::lossy(400_000, 0);
        let (actors, report) = ThreadedRun::run(
            echo_pair(),
            cfg,
            Duration::from_millis(300),
            Duration::from_millis(100),
        );
        let mut totals = LinkStats::default();
        for t in &report.transport_per_actor {
            totals.add(t);
        }
        assert!(totals.dropped > 0, "loss must register");
        assert!(
            actors[0].received < 500,
            "echoes received={} should be lossy",
            actors[0].received
        );
        // Every missing echo is accounted for as a drop (of the ping or of
        // the echo); nothing vanishes unexplained.
        assert!(
            actors[0].received + totals.dropped >= 500,
            "received={} dropped={}",
            actors[0].received,
            totals.dropped
        );
    }

    #[test]
    fn framed_mode_survives_fault_plane_duplication() {
        // Duplication exercises the shared-Arc path: the duplicate is the
        // same frame, and both copies must decode.
        let mut cfg = SimConfig::seeded(7);
        cfg.faults = threev_sim::FaultPlane::lossy(0, 300_000);
        let (actors, report) = ThreadedRun::run_framed(
            echo_pair(),
            cfg,
            Duration::from_millis(300),
            Duration::from_millis(100),
        );
        let mut totals = LinkStats::default();
        for t in &report.transport_per_actor {
            totals.add(t);
        }
        assert!(totals.duplicated > 0, "duplication must register");
        assert!(
            actors[0].received >= 500,
            "echoes={} with dup-only faults nothing is lost",
            actors[0].received
        );
        assert_eq!(report.codec_errors_per_actor, vec![0, 0]);
    }

    #[test]
    fn wall_clock_timers_fire() {
        let (actors, _) = ThreadedRun::run(
            vec![Ticker { ticks: 0 }],
            SimConfig::seeded(2),
            Duration::from_millis(250),
            Duration::ZERO,
        );
        // ~25 ticks expected; accept generous scheduling slop.
        assert!(
            (10..=40).contains(&actors[0].ticks),
            "ticks={}",
            actors[0].ticks
        );
    }
}
