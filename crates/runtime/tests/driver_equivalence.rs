//! Cross-driver equivalence: the discrete-event simulator and the
//! real-thread runtime run the *same* sans-io engine code, so a commuting
//! workload must leave bit-identical final stores under both drivers — and
//! under both threaded delivery modes.
//!
//! Timing differs wildly (virtual LAN latencies vs OS scheduling), so
//! per-transaction latencies and journal *entry order* are driver-specific.
//! But journals are semantically sets (appends commute; see
//! `threev_model::value`), so the comparison canonicalises each journal by
//! sorting its entries. Counters need no canonicalisation: addition
//! commutes outright. Everything else — which versions exist, which keys
//! hold what — must match exactly.

use std::time::Duration;

use threev_core::client::Arrival;
use threev_core::cluster::{build_actors, ClusterActor, ClusterConfig, ThreeVCluster};
use threev_core::node::ThreeVNode;
use threev_model::{Key, TxnId, Value};
use threev_runtime::{DeliveryMode, ThreadedRun};
use threev_sim::{SimDuration, SimTime};
use threev_workload::HospitalWorkload;

use threev_analysis::TxnStatus;

fn workload() -> HospitalWorkload {
    HospitalWorkload {
        departments: 3,
        patients: 10,
        rate_tps: 1_000.0,
        read_pct: 20,
        max_fanout: 3,
        duration: SimDuration::from_millis(50),
        zipf_s: 0.8,
        seed: 0xD21,
    }
}

/// Canonical per-node store image: every key, every version, with journal
/// entries sorted (order carries no meaning for commuting appends).
fn store_image(node: &ThreeVNode) -> Vec<String> {
    let mut keys: Vec<Key> = node.store().keys().collect();
    keys.sort_unstable();
    keys.into_iter()
        .map(|k| {
            let layout = node.store().layout(k).expect("key exists");
            let canon: Vec<String> = layout
                .into_iter()
                .map(|(v, value)| match value {
                    Value::Journal(mut entries) => {
                        entries.sort_by_key(|e| (e.txn, e.amount, e.tag));
                        format!("{v:?}:jrn{entries:?}")
                    }
                    other => format!("{v:?}:{other:?}"),
                })
                .collect();
            format!("{k:?} => {canon:?}")
        })
        .collect()
}

/// One driver's outcome: committed transaction ids and the store images.
struct Outcome {
    committed: Vec<TxnId>,
    stores: Vec<Vec<String>>,
}

fn des_outcome(arrivals: Vec<Arrival>) -> Outcome {
    let w = workload();
    // `THREEV_BACKEND=paged` runs the DES side over the on-disk backend
    // (fresh scratch dir); the threaded side keeps its own hook below, so
    // the equivalence also spans storage backends.
    let cfg = ClusterConfig::new(w.departments)
        .backend(threev::testutil::backend_from_env("driver-eq-des"));
    let mut cluster = ThreeVCluster::new(&w.schema(), cfg, arrivals);
    cluster.run(SimTime::MAX);
    let mut committed: Vec<TxnId> = cluster
        .records()
        .iter()
        .filter(|r| r.status == TxnStatus::Committed)
        .map(|r| r.id)
        .collect();
    committed.sort_unstable();
    Outcome {
        committed,
        stores: (0..w.departments)
            .map(|i| store_image(cluster.node(i)))
            .collect(),
    }
}

fn threaded_outcome(arrivals: Vec<Arrival>, mode: DeliveryMode) -> Outcome {
    let w = workload();
    let cfg = ClusterConfig::new(w.departments)
        .backend(threev::testutil::backend_from_env("driver-eq-threaded"));
    let actors = build_actors(&w.schema(), &cfg, arrivals);
    let (actors, report) = ThreadedRun::run_with(
        actors,
        cfg.sim.clone(),
        mode,
        // The 50ms arrival window plus a wide completion margin: CI boxes
        // under load must still drain every in-flight tree.
        Duration::from_millis(400),
        Duration::from_millis(300),
    );
    let batches: u64 = report.batches_per_actor.iter().sum();
    match mode {
        DeliveryMode::Batched => assert!(batches > 0, "batched run must batch"),
        DeliveryMode::PerMessage => assert_eq!(batches, 0, "per-message run must not batch"),
    }
    // The unified transport with faults disabled must behave as a pure
    // pipe on the wire, too: no drops, duplicates, or fault reorderings.
    let mut totals = threev_sim::LinkStats::default();
    for t in &report.transport_per_actor {
        totals.add(t);
    }
    assert!(totals.sent > 0, "transport must carry the run's traffic");
    assert_eq!(
        (totals.dropped, totals.duplicated, totals.reordered),
        (0, 0, 0),
        "no-fault threaded run must not drop/duplicate/reorder"
    );
    let mut stores = Vec::new();
    let mut committed = Vec::new();
    for actor in &actors {
        match actor {
            ClusterActor::Node(n) => stores.push(store_image(n)),
            ClusterActor::Client(c) => {
                for r in c.records() {
                    assert_eq!(
                        r.status,
                        TxnStatus::Committed,
                        "txn {:?} unfinished under {mode:?} — raise the drain margin?",
                        r.id
                    );
                    committed.push(r.id);
                }
            }
            ClusterActor::Coordinator(_) => {}
        }
    }
    committed.sort_unstable();
    Outcome { committed, stores }
}

#[test]
fn des_and_threads_reach_identical_stores() {
    let arrivals = workload().arrivals();
    assert!(!arrivals.is_empty());

    let des = des_outcome(arrivals.clone());
    assert_eq!(
        des.committed.len(),
        arrivals.len(),
        "DES commits everything"
    );

    for mode in [DeliveryMode::Batched, DeliveryMode::PerMessage] {
        let threaded = threaded_outcome(arrivals.clone(), mode);
        assert_eq!(des.committed, threaded.committed, "{mode:?}: txn sets");
        for (i, (d, t)) in des.stores.iter().zip(&threaded.stores).enumerate() {
            assert_eq!(d, t, "{mode:?}: node {i} store diverged");
        }
    }
}
