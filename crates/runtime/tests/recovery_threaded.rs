//! Crash-restart recovery on real threads with a **file-backed WAL**.
//!
//! The DES suite (`tests/recovery_under_crashes.rs` at the workspace root)
//! proves the recovery protocol deterministic-correct; this test proves the
//! durability layer survives contact with the operating system: each node
//! logs to an actual on-disk WAL ([`DurabilityMode::File`]), the crash is
//! injected by the same fault plane driving the DES kernel, and the node's
//! thread rebuilds its engine from checkpoint + log tail while the other
//! threads keep running.

use std::path::{Path, PathBuf};
use std::time::Duration;

use threev_analysis::TxnStatus;
use threev_core::advance::AdvancementPolicy;
use threev_core::client::Arrival;
use threev_core::cluster::{build_actors, ClusterActor, ClusterConfig};
use threev_core::node::{DurabilityMode, ThreeVNode};
use threev_model::{Key, KeyDecl, NodeId, Schema, SubtxnPlan, TxnPlan, UpdateOp, Value, VersionNo};
use threev_runtime::ThreadedRun;
use threev_sim::{NodeCrash, SimConfig, SimDuration, SimTime};

const N_NODES: u16 = 3;
const CRASHED: usize = 1;

fn k(i: u64) -> Key {
    Key(i)
}
fn n(i: u16) -> NodeId {
    NodeId(i)
}

/// Wall-clock milliseconds as kernel time (the threaded driver ties
/// `SimTime` to elapsed microseconds).
fn ms(x: u64) -> SimTime {
    SimTime(x * 1_000)
}

fn schema() -> Schema {
    Schema::new(vec![
        KeyDecl::counter(k(1), n(0), 0),
        KeyDecl::journal(k(11), n(0)),
        KeyDecl::counter(k(2), n(1), 0),
        KeyDecl::journal(k(12), n(1)),
        KeyDecl::counter(k(3), n(2), 0),
        KeyDecl::journal(k(13), n(2)),
    ])
}

fn visit(amount: i64, tag: u32) -> TxnPlan {
    TxnPlan::commuting(
        SubtxnPlan::new(n(0))
            .update(k(1), UpdateOp::Add(amount))
            .update(k(11), UpdateOp::Append { amount, tag })
            .child(
                SubtxnPlan::new(n(1))
                    .update(k(2), UpdateOp::Add(amount))
                    .update(k(12), UpdateOp::Append { amount, tag }),
            )
            .child(
                SubtxnPlan::new(n(2))
                    .update(k(3), UpdateOp::Add(amount))
                    .update(k(13), UpdateOp::Append { amount, tag }),
            ),
    )
}

/// Data plane finishes in the first ~25ms of wall time; the advancement
/// (and the crash) comes much later, so the crash only races the control
/// plane — same shape as the DES acceptance tests.
fn arrivals() -> Vec<Arrival> {
    (0..20)
        .map(|i| Arrival::at(ms(i), visit(1 + i as i64 % 5, i as u32)))
        .collect()
}

/// Canonical store image (journals sorted — append order is meaningless
/// for commuting updates and genuinely varies across thread schedules).
fn store_image(node: &ThreeVNode) -> Vec<String> {
    let mut keys: Vec<Key> = node.store().keys().collect();
    keys.sort_unstable();
    keys.into_iter()
        .map(|key| {
            let layout = node.store().layout(key).expect("key exists");
            let canon: Vec<String> = layout
                .into_iter()
                .map(|(v, value)| match value {
                    Value::Journal(mut entries) => {
                        entries.sort_by_key(|e| (e.txn, e.amount, e.tag));
                        format!("{v:?}:jrn{entries:?}")
                    }
                    other => format!("{v:?}:{other:?}"),
                })
                .collect();
            format!("{key:?} => {canon:?}")
        })
        .collect()
}

struct Outcome {
    stores: Vec<Vec<String>>,
    recoveries: u64,
    wal_records: u64,
}

/// One threaded run with per-node WALs under `dir`. The directory is
/// recreated fresh so the constructor takes the cold-start path (initial
/// checkpoint) rather than recovering a previous test's state.
fn run_threaded(dir: &Path, crashes: Vec<NodeCrash>) -> Outcome {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("create WAL dir");

    let mut cfg = ClusterConfig::new(N_NODES)
        .advancement(AdvancementPolicy::Periodic {
            first: SimDuration::from_millis(150),
            period: SimDuration::from_millis(10_000),
        })
        .durability(DurabilityMode::File {
            dir: dir.to_path_buf(),
            checkpoint_every: 32,
        });
    cfg.protocol.coordinator.retransmit = Some(SimDuration::from_millis(2));
    let actors = build_actors(&schema(), &cfg, arrivals());

    let mut scfg = SimConfig::seeded(7);
    scfg.faults.crashes = crashes;
    let (actors, _report) = ThreadedRun::run(
        actors,
        scfg,
        Duration::from_millis(400),
        Duration::from_millis(400),
    );

    // Every visit commits in both the clean and the crashed run: the data
    // plane drained long before the crash window opens.
    let ClusterActor::Client(client) = &actors[N_NODES as usize + 1] else {
        panic!("last actor is the client");
    };
    let committed = client
        .records()
        .iter()
        .filter(|r| r.status == TxnStatus::Committed)
        .count();
    assert_eq!(committed, arrivals().len(), "every visit commits");

    let ClusterActor::Coordinator(coord) = &actors[N_NODES as usize] else {
        panic!("actor N is the coordinator");
    };
    assert_eq!(coord.records().len(), 1, "exactly one advancement");

    let mut stores = Vec::new();
    let mut recoveries = 0;
    let mut wal_records = 0;
    for (i, actor) in actors.iter().take(N_NODES as usize).enumerate() {
        let ClusterActor::Node(node) = actor else {
            panic!("actors 0..N are nodes");
        };
        assert_eq!(
            (node.vu(), node.vr()),
            (VersionNo(2), VersionNo(1)),
            "node {i} version window after advancement"
        );
        assert!(node.is_quiescent(), "node {i} left in-flight state");
        stores.push(store_image(node));
        if i == CRASHED {
            recoveries = node.stats().recoveries;
            wal_records = node.stats().wal_records;
        }
    }
    Outcome {
        stores,
        recoveries,
        wal_records,
    }
}

fn temp_dir(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!("threev-recovery-{}-{label}", std::process::id()))
}

/// Acceptance: a node crashed mid-advancement on real threads restarts
/// from its on-disk checkpoint + WAL tail, rejoins via version skew, and
/// the cluster converges to the clean run's stores.
#[test]
fn file_backed_crash_recovery_converges_on_threads() {
    let clean_dir = temp_dir("clean");
    let crash_dir = temp_dir("crash");

    let clean = run_threaded(&clean_dir, Vec::new());
    assert!(clean.wal_records > 0, "file WAL saw traffic");

    // 155ms: five wall-clock milliseconds after the advancement trigger —
    // inside or immediately around the four-phase window. 30ms of dead
    // time guarantees the node misses live phase traffic and must be
    // carried by coordinator retransmits after restart.
    let crashed = run_threaded(
        &crash_dir,
        vec![NodeCrash {
            node: n(CRASHED as u16),
            at: ms(155),
            restart_after: SimDuration::from_millis(30),
        }],
    );
    assert!(
        crashed.recoveries >= 1,
        "node {CRASHED} never recovered from its file WAL"
    );
    for (i, (c, f)) in clean.stores.iter().zip(&crashed.stores).enumerate() {
        assert_eq!(c, f, "node {i} diverged after file-backed crash-restart");
    }

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}
