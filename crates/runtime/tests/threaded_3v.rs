//! The 3V protocol on real threads: the same engine code the simulator
//! verifies, scheduled by the OS, with crossbeam channels as the network.

use std::time::Duration;

use threev_analysis::{Auditor, TxnStatus};
use threev_core::advance::AdvancementPolicy;
use threev_core::cluster::{build_actors, ClusterActor, ClusterConfig};
use threev_runtime::ThreadedRun;
use threev_sim::{SimConfig, SimDuration};
use threev_workload::HospitalWorkload;

#[test]
fn hospital_on_threads_commits_and_audits_clean() {
    let workload = HospitalWorkload {
        departments: 3,
        patients: 40,
        rate_tps: 2_000.0,
        read_pct: 25,
        max_fanout: 3,
        duration: SimDuration::from_millis(300),
        zipf_s: 0.9,
        seed: 77,
    };
    let schema = workload.schema();
    let arrivals = workload.arrivals();
    let n_arrivals = arrivals.len();
    assert!(n_arrivals > 100, "workload should be non-trivial");

    let cfg = ClusterConfig::new(3).advancement(AdvancementPolicy::Periodic {
        first: SimDuration::from_millis(50),
        period: SimDuration::from_millis(100),
    });
    let actors = build_actors(&schema, &cfg, arrivals);

    let (actors, report) = ThreadedRun::run(
        actors,
        SimConfig::seeded(7),
        Duration::from_millis(400),
        Duration::from_millis(400),
    );
    assert!(report.elapsed >= Duration::from_millis(700));

    let ClusterActor::Client(client) = &actors[4] else {
        panic!("actor 4 is the client");
    };
    let records = client.records();
    assert_eq!(records.len(), n_arrivals);
    let committed = records
        .iter()
        .filter(|r| r.status == TxnStatus::Committed)
        .count();
    // The drain window is generous; essentially everything should land.
    assert!(
        committed as f64 / n_arrivals as f64 > 0.95,
        "committed {committed}/{n_arrivals}"
    );

    // Serializability holds on threads exactly as in the simulator.
    let audit = Auditor::new(records).check();
    assert!(audit.clean(), "{audit:?}");

    // Advancement ran concurrently with the workload.
    let ClusterActor::Coordinator(coord) = &actors[3] else {
        panic!("actor 3 is the coordinator");
    };
    assert!(!coord.records().is_empty(), "advancements completed");

    // The 3V space bound holds under real concurrency.
    for node in actors.iter().take(3) {
        let ClusterActor::Node(n) = node else {
            panic!("actors 0..3 are nodes");
        };
        assert!(n.store_stats().max_versions_of_any_item <= 3);
    }
}
