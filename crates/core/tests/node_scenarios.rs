//! Direct message-level scenarios against the 3V node engine: the §2.3
//! races, compensation orderings, NC3V edge cases, and counter bookkeeping,
//! all driven by hand-injected protocol messages.

use threev_core::msg::Msg;
use threev_core::node::{NodeConfig, ThreeVNode};
use threev_model::{
    Key, KeyDecl, NodeId, Schema, SubtxnId, SubtxnPlan, TxnId, TxnKind, UpdateOp, Value, VersionNo,
};
use threev_sim::{Actor, Ctx, LatencyModel, SimConfig, SimDuration, SimTime, Simulation};

const TARGET: NodeId = NodeId(0);
const PEER: NodeId = NodeId(1);
const X: Key = Key(1);
const REG: Key = Key(2);

fn v(n: u32) -> VersionNo {
    VersionNo(n)
}
fn tid(seq: u64) -> TxnId {
    TxnId::new(seq, PEER)
}
fn sub(seq: u64) -> SubtxnId {
    SubtxnId::new(PEER, seq)
}

/// Two 3V nodes; node 0 is inspected, node 1 absorbs replies.
enum TestActor {
    Node(ThreeVNode),
}

impl Actor for TestActor {
    type Msg = Msg;
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        let TestActor::Node(n) = self;
        n.on_message(ctx, from, msg);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        let TestActor::Node(n) = self;
        n.on_timer(ctx, token);
    }
}

fn schema() -> Schema {
    Schema::new(vec![
        KeyDecl::counter(X, TARGET, 0),
        KeyDecl::register(REG, TARGET, 0),
        KeyDecl::counter(Key(3), PEER, 0),
    ])
}

fn sim(locks: bool) -> Simulation<TestActor> {
    let cfg = NodeConfig {
        locks_enabled: locks,
        ..NodeConfig::default()
    };
    let actors = vec![
        TestActor::Node(ThreeVNode::new(&schema(), TARGET, cfg.clone())),
        TestActor::Node(ThreeVNode::new(&schema(), PEER, cfg)),
    ];
    Simulation::new(
        actors,
        SimConfig {
            latency: LatencyModel::Fixed(SimDuration::from_micros(100)),
            ..SimConfig::seeded(1)
        },
    )
}

fn node(simulation: &Simulation<TestActor>, id: NodeId) -> &ThreeVNode {
    let TestActor::Node(n) = &simulation.actors()[id.index()];
    n
}

fn subtxn_msg(txn: TxnId, kind: TxnKind, version: VersionNo, plan: SubtxnPlan) -> Msg {
    Msg::Subtxn {
        txn,
        kind,
        version,
        plan,
        parent_sub: sub(0),
        client: PEER,
        fail_node: None,
    }
}

#[test]
fn descendant_with_newer_version_acts_as_notification() {
    let mut s = sim(false);
    // A version-2 update descendant arrives at a node still on vu=1.
    s.inject_at(
        SimTime(10),
        PEER,
        TARGET,
        subtxn_msg(
            tid(1),
            TxnKind::Commuting,
            v(2),
            SubtxnPlan::new(TARGET).update(X, UpdateOp::Add(5)),
        ),
    );
    s.run_to_quiescence(SimTime::MAX);
    let n = node(&s, TARGET);
    assert_eq!(n.vu(), v(2), "arrival inferred the advancement");
    assert_eq!(n.vr(), v(0));
    // X materialised at version 2 by copy-on-update.
    let layout = n.store().layout(X).unwrap();
    assert_eq!(
        layout,
        vec![(v(0), Value::Counter(0)), (v(2), Value::Counter(5))]
    );
    // Completion counter credited to the sender at version 2.
    assert_eq!(n.counters().completion(v(2), PEER), 1);
}

#[test]
fn read_only_descendants_never_advance_vu() {
    let mut s = sim(false);
    s.inject_at(
        SimTime(10),
        PEER,
        TARGET,
        subtxn_msg(
            tid(1),
            TxnKind::ReadOnly,
            v(0),
            SubtxnPlan::new(TARGET).read(X),
        ),
    );
    s.run_to_quiescence(SimTime::MAX);
    let n = node(&s, TARGET);
    assert_eq!(n.vu(), v(1), "reads carry no advancement information");
    assert_eq!(n.counters().completion(v(0), PEER), 1);
}

#[test]
fn straggler_dual_writes_only_existing_newer_copies() {
    let mut s = sim(false);
    // First a v2 write creates X(2); then a v1 straggler must hit both.
    s.inject_at(
        SimTime(10),
        PEER,
        TARGET,
        subtxn_msg(
            tid(1),
            TxnKind::Commuting,
            v(2),
            SubtxnPlan::new(TARGET).update(X, UpdateOp::Add(100)),
        ),
    );
    s.inject_at(
        SimTime(20),
        PEER,
        TARGET,
        subtxn_msg(
            tid(2),
            TxnKind::Commuting,
            v(1),
            SubtxnPlan::new(TARGET).update(X, UpdateOp::Add(1)),
        ),
    );
    s.run_to_quiescence(SimTime::MAX);
    let n = node(&s, TARGET);
    let layout = n.store().layout(X).unwrap();
    assert_eq!(
        layout,
        vec![
            (v(0), Value::Counter(0)),
            (v(1), Value::Counter(1)),
            (v(2), Value::Counter(101)),
        ]
    );
    assert_eq!(n.store_stats().dual_writes, 1);
}

#[test]
fn compensation_before_original_tombstones_it() {
    let mut s = sim(false);
    let txn = tid(7);
    // Compensation overtakes the original subtransaction.
    s.inject_at(
        SimTime(10),
        PEER,
        TARGET,
        Msg::Compensate { txn, version: v(1) },
    );
    s.inject_at(
        SimTime(50),
        PEER,
        TARGET,
        subtxn_msg(
            txn,
            TxnKind::Commuting,
            v(1),
            SubtxnPlan::new(TARGET).update(X, UpdateOp::Add(999)),
        ),
    );
    s.run_to_quiescence(SimTime::MAX);
    let n = node(&s, TARGET);
    // The original executed as a no-op...
    assert_eq!(
        n.store().layout(X).unwrap(),
        vec![(v(0), Value::Counter(0))]
    );
    assert_eq!(n.stats().tombstones, 1);
    assert_eq!(n.stats().skipped_tombstoned, 1);
    // ...but both the compensation and the original are counted: R was
    // incremented twice at the sender, so C must be 2 here.
    assert_eq!(n.counters().completion(v(1), PEER), 2);
}

#[test]
fn compensation_after_original_rolls_back_and_deduplicates() {
    let mut s = sim(false);
    let txn = tid(7);
    s.inject_at(
        SimTime(10),
        PEER,
        TARGET,
        subtxn_msg(
            txn,
            TxnKind::Commuting,
            v(1),
            SubtxnPlan::new(TARGET).update(X, UpdateOp::Add(50)),
        ),
    );
    // Two compensating subtransactions (e.g. forwarded from two neighbours
    // in a diamond) — only one may apply (§3.2 footnote).
    s.inject_at(
        SimTime(100),
        PEER,
        TARGET,
        Msg::Compensate { txn, version: v(1) },
    );
    s.inject_at(
        SimTime(200),
        PEER,
        TARGET,
        Msg::Compensate { txn, version: v(1) },
    );
    s.run_to_quiescence(SimTime::MAX);
    let n = node(&s, TARGET);
    let layout = n.store().layout(X).unwrap();
    assert_eq!(
        layout,
        vec![(v(0), Value::Counter(0)), (v(1), Value::Counter(0))],
        "the +50 was compensated exactly once"
    );
    assert_eq!(n.stats().compensations_applied, 1);
    assert_eq!(
        n.counters().completion(v(1), PEER),
        3,
        "subtx + 2 compensations"
    );
}

#[test]
fn late_subtxn_after_compensation_is_skipped() {
    let mut s = sim(false);
    let txn = tid(7);
    // Original subtxn executes, compensation sweeps through, then ANOTHER
    // subtransaction of the same transaction arrives late.
    s.inject_at(
        SimTime(10),
        PEER,
        TARGET,
        subtxn_msg(
            txn,
            TxnKind::Commuting,
            v(1),
            SubtxnPlan::new(TARGET).update(X, UpdateOp::Add(50)),
        ),
    );
    s.inject_at(
        SimTime(100),
        PEER,
        TARGET,
        Msg::Compensate { txn, version: v(1) },
    );
    s.inject_at(
        SimTime(200),
        PEER,
        TARGET,
        subtxn_msg(
            txn,
            TxnKind::Commuting,
            v(1),
            SubtxnPlan::new(TARGET).update(X, UpdateOp::Add(11)),
        ),
    );
    s.run_to_quiescence(SimTime::MAX);
    let n = node(&s, TARGET);
    let layout = n.store().layout(X).unwrap();
    assert_eq!(
        layout,
        vec![(v(0), Value::Counter(0)), (v(1), Value::Counter(0))],
        "late leg of the aborted transaction must not execute"
    );
}

#[test]
fn nc_descendant_aborts_on_stale_version() {
    let mut s = sim(true);
    // A commuting v2 write creates REG... registers are NC-only; use a
    // commuting write on X to advance vu, then an NC write on REG at v2,
    // then a *stale* NC descendant at v1 touching REG must doom itself.
    s.inject_at(
        SimTime(10),
        PEER,
        TARGET,
        subtxn_msg(
            tid(1),
            TxnKind::NonCommuting,
            v(2),
            SubtxnPlan::new(TARGET).update(REG, UpdateOp::Assign(9)),
        ),
    );
    s.inject_at(
        SimTime(5_000),
        PEER,
        TARGET,
        subtxn_msg(
            tid(2),
            TxnKind::NonCommuting,
            v(1),
            SubtxnPlan::new(TARGET).update(REG, UpdateOp::Assign(1)),
        ),
    );
    // Resolve txn 1's 2PC so its locks release and version 2 of REG exists.
    s.inject_at(SimTime(2_000), PEER, TARGET, Msg::NcPrepare { txn: tid(1) });
    s.inject_at(
        SimTime(3_000),
        PEER,
        TARGET,
        Msg::NcDecision {
            txn: tid(1),
            commit: true,
        },
    );
    // And txn 2's prepare: it must vote NO.
    s.inject_at(SimTime(8_000), PEER, TARGET, Msg::NcPrepare { txn: tid(2) });
    s.run_to_quiescence(SimTime::MAX);
    let n = node(&s, TARGET);
    assert_eq!(n.stats().nc_stale_aborts, 1);
    // REG version 2 still holds txn 1's value; no v1 write happened.
    let layout = n.store().layout(REG).unwrap();
    assert_eq!(layout.last().unwrap().1.as_register(), Some(9));
    assert!(!layout.iter().any(|(w, _)| *w == v(1)));
}

#[test]
fn nc_completion_counter_moves_with_decision_not_execution() {
    let mut s = sim(true);
    s.inject_at(
        SimTime(10),
        PEER,
        TARGET,
        subtxn_msg(
            tid(1),
            TxnKind::NonCommuting,
            v(1),
            SubtxnPlan::new(TARGET).update(REG, UpdateOp::Assign(5)),
        ),
    );
    s.run_until(SimTime(1_000));
    assert_eq!(
        node(&s, TARGET).counters().completion(v(1), PEER),
        0,
        "no completion before the 2PC decision (§5 step 6)"
    );
    s.inject_at(
        SimTime(2_000),
        PEER,
        TARGET,
        Msg::NcDecision {
            txn: tid(1),
            commit: true,
        },
    );
    s.run_to_quiescence(SimTime::MAX);
    assert_eq!(node(&s, TARGET).counters().completion(v(1), PEER), 1);
    assert_eq!(
        node(&s, TARGET)
            .store()
            .layout(REG)
            .unwrap()
            .last()
            .unwrap()
            .1
            .as_register(),
        Some(5)
    );
}

#[test]
fn nc_abort_decision_rolls_back() {
    let mut s = sim(true);
    s.inject_at(
        SimTime(10),
        PEER,
        TARGET,
        subtxn_msg(
            tid(1),
            TxnKind::NonCommuting,
            v(1),
            SubtxnPlan::new(TARGET).update(REG, UpdateOp::Assign(5)),
        ),
    );
    s.inject_at(
        SimTime(2_000),
        PEER,
        TARGET,
        Msg::NcDecision {
            txn: tid(1),
            commit: false,
        },
    );
    s.run_to_quiescence(SimTime::MAX);
    let n = node(&s, TARGET);
    assert_eq!(n.stats().nc_rollbacks, 1);
    assert_eq!(
        n.store().layout(REG).unwrap(),
        vec![(v(0), Value::Register(0))],
        "assignment rolled back, copy-on-update version removed"
    );
    assert_eq!(
        n.counters().completion(v(1), PEER),
        1,
        "abort still completes"
    );
    assert!(n.is_quiescent());
}

#[test]
fn gc_message_collects_versions_and_counters() {
    let mut s = sim(false);
    s.inject_at(
        SimTime(10),
        PEER,
        TARGET,
        subtxn_msg(
            tid(1),
            TxnKind::Commuting,
            v(1),
            SubtxnPlan::new(TARGET).update(X, UpdateOp::Add(5)),
        ),
    );
    s.inject_at(
        SimTime(100),
        PEER,
        TARGET,
        Msg::AdvanceRead { vr_new: v(1) },
    );
    s.inject_at(SimTime(200), PEER, TARGET, Msg::Gc { vr_new: v(1) });
    s.run_to_quiescence(SimTime::MAX);
    let n = node(&s, TARGET);
    assert_eq!(n.vr(), v(1));
    assert_eq!(
        n.store().layout(X).unwrap(),
        vec![(v(1), Value::Counter(5))]
    );
    // Version-1 counters survive (they are >= vr_new); version-0 are gone.
    assert_eq!(n.counters().active_versions(), 1);
    assert_eq!(n.counters().completion(v(1), PEER), 1);
}

#[test]
fn stale_read_after_gc_is_rejected_without_panicking() {
    // GC collapses X to version 1, then a stale read-only descendant at
    // version 0 arrives: no copy is visible. The node must not go down
    // over one malformed message — it rejects the subtransaction (typed
    // StoreError path), counts the rejection, and keeps serving.
    let mut s = sim(false);
    s.inject_at(
        SimTime(10),
        PEER,
        TARGET,
        subtxn_msg(
            tid(1),
            TxnKind::Commuting,
            v(1),
            SubtxnPlan::new(TARGET).update(X, UpdateOp::Add(5)),
        ),
    );
    s.inject_at(
        SimTime(100),
        PEER,
        TARGET,
        Msg::AdvanceRead { vr_new: v(1) },
    );
    s.inject_at(SimTime(200), PEER, TARGET, Msg::Gc { vr_new: v(1) });
    s.inject_at(
        SimTime(300),
        PEER,
        TARGET,
        subtxn_msg(
            tid(2),
            TxnKind::ReadOnly,
            v(0),
            SubtxnPlan::new(TARGET).read(X),
        ),
    );
    s.run_to_quiescence(SimTime::MAX);
    let n = node(&s, TARGET);
    assert_eq!(
        n.stats().malformed_rejected,
        1,
        "the stale read is rejected, not executed"
    );
    // The node survived: its version window is intact and the earlier
    // commuting update is still visible at version 1.
    assert_eq!(n.vr(), v(1));
    assert_eq!(n.vu(), v(1));
    assert_eq!(
        n.store().layout(X).unwrap(),
        vec![(v(1), Value::Counter(5))]
    );
}

#[test]
fn counters_report_is_atomic_per_node_snapshot() {
    let mut s = sim(false);
    s.inject_at(
        SimTime(10),
        PEER,
        TARGET,
        subtxn_msg(
            tid(1),
            TxnKind::Commuting,
            v(1),
            SubtxnPlan::new(TARGET)
                .update(X, UpdateOp::Add(5))
                .child(SubtxnPlan::new(PEER).update(Key(3), UpdateOp::Add(1))),
        ),
    );
    s.run_to_quiescence(SimTime::MAX);
    let n = node(&s, TARGET);
    // The child spawned to PEER incremented the local request row...
    assert_eq!(n.counters().request(v(1), PEER), 1);
    // ...and PEER completed it, crediting TARGET as the source.
    assert_eq!(node(&s, PEER).counters().completion(v(1), TARGET), 1);
}
