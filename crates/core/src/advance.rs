//! The version-advancement coordinator (paper §4.3).
//!
//! Advancement to a new read version runs in four phases, all asynchronous
//! with user transactions:
//!
//! 1. **Switch to a new update version** — broadcast
//!    `start-advancement(vu_old + 1)`, collect acks. After the last ack,
//!    every new root update transaction is guaranteed to carry the new
//!    version.
//! 2. **Updates phase-out** — poll every node's request/completion counters
//!    for `vu_old` until the termination rule (below) fires: version
//!    `vu_old` is then inter-node consistent (Def. 3.2).
//! 3. **Switch to a new read version** — broadcast `vr_old + 1`, collect
//!    acks; new queries now read the freshly consistent version.
//! 4. **Garbage collection** — poll `vr_old`'s counters until the old
//!    queries drain, then tell every node to collect versions `< vr_new`.
//!
//! # Termination detection: the two-round rule
//!
//! The coordinator polls counters *asynchronously* — no locks, no quiescing.
//! Each node replies with an **atomic snapshot** of its local `R`/`C` rows
//! (a node processes one message at a time). A poll round is *balanced*
//! when `R(v)pq == C(v)pq` for every pair in the assembled
//! [`CounterMatrix`]. The coordinator declares termination only after
//! **two consecutive rounds that are balanced and identical**, where round
//! `k+1` starts strictly after every round-`k` reply has arrived.
//!
//! *Why one balanced round is not enough*: snapshots at different nodes are
//! taken at different times. On the pair `(p, q)`, a subtransaction `B`
//! requested after `p`'s snapshot but completed before `q`'s snapshot
//! contributes `C` without `R` and can mask an outstanding subtransaction
//! `S` that contributes `R` without `C` — balanced, yet work is in flight.
//!
//! *Why two identical balanced rounds suffice*: counters are monotone.
//! Suppose some version-`v` subtransaction `S` executes after round 2's
//! snapshots. Walk up `S`'s ancestor chain to the root, which necessarily
//! executed before Phase 1 completed (after a node acks Phase 1 it assigns
//! only newer versions), hence before round 1. Let `A` be the deepest
//! ancestor that executed before its node's round-1 snapshot; `A`'s spawn
//! of the next ancestor `A'` incremented `R[node(A) → node(A')]` *in* round
//! 1, while `A'` — which executes only after its node's round-1 snapshot —
//! has no round-1 `C`. Balance in round 1 then requires a masking
//! subtransaction `B` on the same pair whose request increment happened
//! after `node(A)`'s round-1 snapshot and whose completion preceded
//! `node(A')`'s round-1 snapshot — but that request increment is then
//! visible in round 2 and not in round 1, contradicting *identical*.
//! Because a node's own completion (`C`) increments in the same atomic
//! handler as its children's requests (`R`), the argument needs no
//! cross-node clock. Compensating subtransactions and NC3V completions
//! (deferred to the 2PC decision) follow the same counting discipline, so
//! they are covered by the same argument. The property-based test
//! `tests/advancement_safety.rs` hammers this with random topologies.

use std::collections::HashMap;

use threev_analysis::VersionTimeline;
use threev_model::{NodeId, VersionNo};
use threev_sim::{Actor, Ctx, SimDuration, SimTime};

use crate::counters::{CounterMatrix, CounterSnapshot};
use crate::msg::Msg;

/// When the coordinator starts advancements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdvancementPolicy {
    /// Never advance automatically; only on [`Msg::TriggerAdvancement`].
    Manual,
    /// Advance every `period`, first at `first` (skipped while one is
    /// already running — the paper assumes at most one instance at a time).
    Periodic {
        /// Delay before the first advancement.
        first: SimDuration,
        /// Interval between advancement starts.
        period: SimDuration,
    },
}

/// Coordinator configuration.
#[derive(Clone, Debug)]
pub struct CoordinatorConfig {
    /// Advancement scheduling policy.
    pub policy: AdvancementPolicy,
    /// Delay between counter poll rounds in phases 2 and 4.
    pub poll_interval: SimDuration,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            policy: AdvancementPolicy::Manual,
            poll_interval: SimDuration::from_millis(2),
        }
    }
}

/// Timing record of one completed advancement (experiments X2/X8).
#[derive(Clone, Debug)]
pub struct AdvancementRecord {
    /// The update version this advancement opened.
    pub vu_new: VersionNo,
    /// Phase 1 start.
    pub started: SimTime,
    /// All Phase 1 acks received.
    pub p1_done: SimTime,
    /// Update phase-out detected (version consistent).
    pub p2_done: SimTime,
    /// All Phase 3 acks received (new read version live).
    pub p3_done: SimTime,
    /// Old queries drained and GC broadcast.
    pub p4_done: SimTime,
    /// Poll rounds used in phase 2.
    pub p2_rounds: u64,
    /// Poll rounds used in phase 4.
    pub p4_rounds: u64,
}

impl AdvancementRecord {
    /// Total wall time of the advancement.
    pub fn total(&self) -> SimDuration {
        self.p4_done.since(self.started)
    }

    /// Time from start until reads switched (the user-visible part).
    pub fn to_read_switch(&self) -> SimDuration {
        self.p3_done.since(self.started)
    }
}

#[derive(Debug)]
enum Phase {
    Idle,
    P1 {
        acks: u32,
    },
    /// Polling `version`; generic over phases 2 and 4.
    Polling {
        version: VersionNo,
        round: u64,
        reports: HashMap<NodeId, CounterSnapshot>,
        prev: Option<CounterMatrix>,
        is_phase2: bool,
    },
    P3 {
        acks: u32,
    },
    /// GC broadcast sent; waiting for every node's ack before going idle.
    P4Gc {
        acks: u32,
    },
}

/// The advancement coordinator actor.
pub struct Coordinator {
    nodes: Vec<NodeId>,
    cfg: CoordinatorConfig,
    vu: VersionNo,
    vr: VersionNo,
    phase: Phase,
    // current advancement's partial record
    cur: Option<AdvancementRecord>,
    records: Vec<AdvancementRecord>,
    timeline: VersionTimeline,
    pending_trigger: bool,
}

const TIMER_POLICY: u64 = 0;
const TIMER_POLL: u64 = 1;

impl Coordinator {
    /// New coordinator over `n_nodes` database nodes (ids `0..n_nodes`).
    pub fn new(n_nodes: u16, cfg: CoordinatorConfig) -> Self {
        Coordinator {
            nodes: (0..n_nodes).map(NodeId).collect(),
            cfg,
            vu: VersionNo(1),
            vr: VersionNo(0),
            phase: Phase::Idle,
            cur: None,
            records: Vec::new(),
            timeline: VersionTimeline::new(),
            pending_trigger: false,
        }
    }

    /// Completed advancement records.
    pub fn records(&self) -> &[AdvancementRecord] {
        &self.records
    }

    /// The version timeline (close/publish instants) for staleness analysis.
    pub fn timeline(&self) -> &VersionTimeline {
        &self.timeline
    }

    /// Coordinator's view of the current read version.
    pub fn vr(&self) -> VersionNo {
        self.vr
    }

    /// Coordinator's view of the current update version.
    pub fn vu(&self) -> VersionNo {
        self.vu
    }

    /// Is an advancement currently running?
    pub fn busy(&self) -> bool {
        !matches!(self.phase, Phase::Idle)
    }

    fn start_advancement(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.busy() {
            // At most one instance runs at a time (paper §4.3 assumption);
            // remember that another was requested.
            self.pending_trigger = true;
            return;
        }
        let vu_new = self.vu.next();
        ctx.trace(|| format!("advancement to {vu_new} begins (phase 1)"));
        // vu_old stops accumulating *new* transactions now-ish; its close
        // time is the phase-1 start (conservative for staleness).
        self.timeline.record_closed(self.vu, ctx.now());
        self.cur = Some(AdvancementRecord {
            vu_new,
            started: ctx.now(),
            p1_done: ctx.now(),
            p2_done: ctx.now(),
            p3_done: ctx.now(),
            p4_done: ctx.now(),
            p2_rounds: 0,
            p4_rounds: 0,
        });
        self.phase = Phase::P1 { acks: 0 };
        for n in &self.nodes {
            ctx.send_tagged(*n, Msg::StartAdvancement { vu_new }, "advance");
        }
    }

    fn begin_polling(&mut self, ctx: &mut Ctx<'_, Msg>, version: VersionNo, is_phase2: bool) {
        self.phase = Phase::Polling {
            version,
            round: 0,
            reports: HashMap::new(),
            prev: None,
            is_phase2,
        };
        self.send_poll(ctx);
    }

    fn send_poll(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let Phase::Polling { version, round, .. } = &self.phase else {
            return;
        };
        let (version, round) = (*version, *round);
        for n in &self.nodes {
            ctx.send_tagged(*n, Msg::ReadCounters { round, version }, "advance");
        }
    }

    fn handle_report(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        round: u64,
        snapshot: CounterSnapshot,
    ) {
        let Phase::Polling {
            round: cur_round,
            reports,
            ..
        } = &mut self.phase
        else {
            return;
        };
        if round != *cur_round {
            return; // stale reply from an earlier round
        }
        reports.insert(from, snapshot);
        if reports.len() < self.nodes.len() {
            return;
        }
        // Full round collected: evaluate the two-round rule.
        let Phase::Polling {
            version,
            round,
            reports,
            prev,
            is_phase2,
        } = &mut self.phase
        else {
            unreachable!()
        };
        let snaps: Vec<(NodeId, CounterSnapshot)> = reports.drain().collect();
        let matrix = CounterMatrix::assemble(&snaps);
        let stable = matrix.balanced() && prev.as_ref() == Some(&matrix);
        let (version, is_phase2) = (*version, *is_phase2);
        if stable {
            let rounds = *round + 1;
            ctx.trace(|| {
                format!(
                    "version {version} drained after {rounds} rounds (phase {})",
                    if is_phase2 { 2 } else { 4 }
                )
            });
            if is_phase2 {
                if let Some(c) = &mut self.cur {
                    c.p2_done = ctx.now();
                    c.p2_rounds = rounds;
                }
                self.enter_phase3(ctx);
            } else {
                if let Some(c) = &mut self.cur {
                    c.p4_done = ctx.now();
                    c.p4_rounds = rounds;
                }
                self.begin_gc(ctx);
            }
        } else {
            *prev = Some(matrix);
            *round += 1;
            let interval = self.cfg.poll_interval;
            ctx.schedule(interval, TIMER_POLL);
        }
    }

    fn enter_phase3(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let vr_new = self.vr.next();
        ctx.trace(|| format!("publishing read version {vr_new} (phase 3)"));
        self.timeline.record_published(vr_new, ctx.now());
        self.phase = Phase::P3 { acks: 0 };
        for n in &self.nodes {
            ctx.send_tagged(*n, Msg::AdvanceRead { vr_new }, "advance");
        }
    }

    fn begin_gc(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let vr_new = self.vr.next();
        self.vr = vr_new;
        self.vu = self.vu.next();
        self.phase = Phase::P4Gc { acks: 0 };
        for n in &self.nodes {
            ctx.send_tagged(*n, Msg::Gc { vr_new }, "advance");
        }
    }

    fn finish_advancement(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.trace(|| format!("advancement complete: vr={} vu={}", self.vr, self.vu));
        if let Some(rec) = self.cur.take() {
            self.records.push(rec);
        }
        self.phase = Phase::Idle;
        if self.pending_trigger {
            self.pending_trigger = false;
            self.start_advancement(ctx);
        }
    }
}

impl Actor for Coordinator {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if let AdvancementPolicy::Periodic { first, .. } = self.cfg.policy {
            ctx.schedule(first, TIMER_POLICY);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::TriggerAdvancement => self.start_advancement(ctx),
            Msg::AdvanceAck { vu_new } => {
                if let Phase::P1 { acks } = &mut self.phase {
                    debug_assert_eq!(vu_new, self.vu.next());
                    *acks += 1;
                    if *acks == self.nodes.len() as u32 {
                        if let Some(c) = &mut self.cur {
                            c.p1_done = ctx.now();
                        }
                        // Phase 2: drain the old update version.
                        let vu_old = self.vu;
                        self.begin_polling(ctx, vu_old, true);
                    }
                }
            }
            Msg::CountersReport { round, snapshot } => {
                self.handle_report(ctx, from, round, snapshot)
            }
            Msg::GcAck { .. } => {
                if let Phase::P4Gc { acks } = &mut self.phase {
                    *acks += 1;
                    if *acks == self.nodes.len() as u32 {
                        self.finish_advancement(ctx);
                    }
                }
            }
            Msg::AdvanceReadAck { vr_new } => {
                if let Phase::P3 { acks } = &mut self.phase {
                    debug_assert_eq!(vr_new, self.vr.next());
                    *acks += 1;
                    if *acks == self.nodes.len() as u32 {
                        if let Some(c) = &mut self.cur {
                            c.p3_done = ctx.now();
                        }
                        // Phase 4: drain the old read version's queries.
                        let vr_old = self.vr;
                        self.begin_polling(ctx, vr_old, false);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        match token {
            TIMER_POLICY => {
                self.start_advancement(ctx);
                if let AdvancementPolicy::Periodic { period, .. } = self.cfg.policy {
                    ctx.schedule(period, TIMER_POLICY);
                }
            }
            TIMER_POLL => self.send_poll(ctx),
            _ => {}
        }
    }
}
