//! The version-advancement coordinator (paper §4.3).
//!
//! Advancement to a new read version runs in four phases, all asynchronous
//! with user transactions:
//!
//! 1. **Switch to a new update version** — broadcast
//!    `start-advancement(vu_old + 1)`, collect acks. After the last ack,
//!    every new root update transaction is guaranteed to carry the new
//!    version.
//! 2. **Updates phase-out** — poll every node's request/completion counters
//!    for `vu_old` until the termination rule (below) fires: version
//!    `vu_old` is then inter-node consistent (Def. 3.2).
//! 3. **Switch to a new read version** — broadcast `vr_old + 1`, collect
//!    acks; new queries now read the freshly consistent version.
//! 4. **Garbage collection** — poll `vr_old`'s counters until the old
//!    queries drain, then tell every node to collect versions `< vr_new`.
//!
//! # Termination detection: the two-round rule
//!
//! The coordinator polls counters *asynchronously* — no locks, no quiescing.
//! Each node replies with an **atomic snapshot** of its local `R`/`C` rows
//! (a node processes one message at a time). A poll round is *balanced*
//! when `R(v)pq == C(v)pq` for every pair in the assembled
//! [`CounterMatrix`]. The coordinator declares termination only after
//! **two consecutive rounds that are balanced and identical**, where round
//! `k+1` starts strictly after every round-`k` reply has arrived.
//!
//! *Why one balanced round is not enough*: snapshots at different nodes are
//! taken at different times. On the pair `(p, q)`, a subtransaction `B`
//! requested after `p`'s snapshot but completed before `q`'s snapshot
//! contributes `C` without `R` and can mask an outstanding subtransaction
//! `S` that contributes `R` without `C` — balanced, yet work is in flight.
//!
//! *Why two identical balanced rounds suffice*: counters are monotone.
//! Suppose some version-`v` subtransaction `S` executes after round 2's
//! snapshots. Walk up `S`'s ancestor chain to the root, which necessarily
//! executed before Phase 1 completed (after a node acks Phase 1 it assigns
//! only newer versions), hence before round 1. Let `A` be the deepest
//! ancestor that executed before its node's round-1 snapshot; `A`'s spawn
//! of the next ancestor `A'` incremented `R[node(A) → node(A')]` *in* round
//! 1, while `A'` — which executes only after its node's round-1 snapshot —
//! has no round-1 `C`. Balance in round 1 then requires a masking
//! subtransaction `B` on the same pair whose request increment happened
//! after `node(A)`'s round-1 snapshot and whose completion preceded
//! `node(A')`'s round-1 snapshot — but that request increment is then
//! visible in round 2 and not in round 1, contradicting *identical*.
//! Because a node's own completion (`C`) increments in the same atomic
//! handler as its children's requests (`R`), the argument needs no
//! cross-node clock. Compensating subtransactions and NC3V completions
//! (deferred to the 2PC decision) follow the same counting discipline, so
//! they are covered by the same argument. The property-based test
//! `tests/advancement_safety.rs` hammers this with random topologies.

use std::collections::{BTreeMap, BTreeSet};

use threev_analysis::VersionTimeline;
use threev_model::{NodeId, VersionNo};
use threev_sim::{Actor, Ctx, SimDuration, SimTime};

use crate::counters::{CounterMatrix, CounterSnapshot};
use crate::msg::Msg;

/// When the coordinator starts advancements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdvancementPolicy {
    /// Never advance automatically; only on [`Msg::TriggerAdvancement`].
    Manual,
    /// Advance every `period`, first at `first` (skipped while one is
    /// already running — the paper assumes at most one instance at a time).
    Periodic {
        /// Delay before the first advancement.
        first: SimDuration,
        /// Interval between advancement starts.
        period: SimDuration,
    },
}

/// Coordinator configuration.
#[derive(Clone, Debug)]
pub struct CoordinatorConfig {
    /// Advancement scheduling policy.
    pub policy: AdvancementPolicy,
    /// Delay between counter poll rounds in phases 2 and 4.
    pub poll_interval: SimDuration,
    /// Retransmit window for control messages. When `Some`, a phase that
    /// has waited this long re-sends its outstanding broadcast — but only
    /// to the nodes that have not yet answered. Every handler on both
    /// sides is idempotent, so retransmits are safe; they are what buys
    /// liveness on a lossy transport. `None` (the default) keeps the
    /// historical fire-and-forget behaviour for fault-free runs.
    pub retransmit: Option<SimDuration>,
    /// **Test-only protocol sabotage**: skip the Phase-2 drain entirely and
    /// publish the new read version as soon as every Phase-1 ack is in —
    /// i.e. revert §4.3's "wait until the old update version is inter-node
    /// consistent". Exists solely so the model checker's acceptance test
    /// can plant a known-unsound build and prove the checker finds and
    /// shrinks a violating schedule. Never set outside tests.
    pub skip_p2_drain: bool,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            policy: AdvancementPolicy::Manual,
            poll_interval: SimDuration::from_millis(2),
            retransmit: None,
            skip_p2_drain: false,
        }
    }
}

/// Timing record of one completed advancement (experiments X2/X8).
#[derive(Clone, Debug)]
pub struct AdvancementRecord {
    /// The update version this advancement opened.
    pub vu_new: VersionNo,
    /// Phase 1 start.
    pub started: SimTime,
    /// All Phase 1 acks received.
    pub p1_done: SimTime,
    /// Update phase-out detected (version consistent).
    pub p2_done: SimTime,
    /// All Phase 3 acks received (new read version live).
    pub p3_done: SimTime,
    /// Old queries drained and GC broadcast.
    pub p4_done: SimTime,
    /// Poll rounds used in phase 2.
    pub p2_rounds: u64,
    /// Poll rounds used in phase 4.
    pub p4_rounds: u64,
}

impl AdvancementRecord {
    /// Total wall time of the advancement.
    pub fn total(&self) -> SimDuration {
        self.p4_done.since(self.started)
    }

    /// Time from start until reads switched (the user-visible part).
    pub fn to_read_switch(&self) -> SimDuration {
        self.p3_done.since(self.started)
    }
}

#[derive(Debug)]
enum Phase {
    Idle,
    /// Acks are sets of responders, not counts: a duplicated ack (lossy
    /// transport, or a retransmitted broadcast re-answered) must not be
    /// double-counted.
    P1 {
        acks: BTreeSet<NodeId>,
    },
    /// Polling `version`; generic over phases 2 and 4. `round` is the
    /// coordinator-global poll sequence number (monotone across phases and
    /// advancements), so a stale or duplicated report can never be
    /// mistaken for a current one; `rounds` counts rounds in this phase
    /// for the timing record.
    Polling {
        version: VersionNo,
        round: u64,
        rounds: u64,
        reports: BTreeMap<NodeId, CounterSnapshot>,
        prev: Option<CounterMatrix>,
        is_phase2: bool,
    },
    P3 {
        acks: BTreeSet<NodeId>,
    },
    /// GC broadcast sent; waiting for every node's ack before going idle.
    P4Gc {
        acks: BTreeSet<NodeId>,
    },
}

/// The advancement coordinator actor.
pub struct Coordinator {
    nodes: Vec<NodeId>,
    cfg: CoordinatorConfig,
    vu: VersionNo,
    vr: VersionNo,
    phase: Phase,
    // current advancement's partial record
    cur: Option<AdvancementRecord>,
    records: Vec<AdvancementRecord>,
    timeline: VersionTimeline,
    pending_trigger: bool,
    /// Global poll sequence number (see [`Phase::Polling`]).
    poll_seq: u64,
    /// Retransmit epoch: bumped on every phase transition. Retransmit
    /// timers carry the epoch they were armed in; a firing whose epoch is
    /// stale is a no-op and does not re-arm, so an idle coordinator
    /// quiesces even with retransmits enabled.
    epoch: u64,
}

const TIMER_POLICY: u64 = 0;
const TIMER_POLL: u64 = 1;
/// Retransmit timer tokens are `TIMER_RETRANSMIT_BASE + epoch`.
const TIMER_RETRANSMIT_BASE: u64 = 1 << 32;

impl Coordinator {
    /// New coordinator over `n_nodes` database nodes (ids `0..n_nodes`).
    pub fn new(n_nodes: u16, cfg: CoordinatorConfig) -> Self {
        Coordinator::for_nodes((0..n_nodes).map(NodeId).collect(), cfg)
    }

    /// New coordinator over an explicit node set — a *partition's* nodes in
    /// a sharded cluster, where the advancement protocol runs per partition
    /// and only ever polls the nodes it governs. Cross-partition activity
    /// still gates advancement, but through the gauge rows in those nodes'
    /// own snapshots — never by talking to another partition.
    pub fn for_nodes(nodes: Vec<NodeId>, cfg: CoordinatorConfig) -> Self {
        Coordinator {
            nodes,
            cfg,
            vu: VersionNo(1),
            vr: VersionNo(0),
            phase: Phase::Idle,
            cur: None,
            records: Vec::new(),
            timeline: VersionTimeline::new(),
            pending_trigger: false,
            poll_seq: 0,
            epoch: 0,
        }
    }

    /// Completed advancement records.
    pub fn records(&self) -> &[AdvancementRecord] {
        &self.records
    }

    /// The version timeline (close/publish instants) for staleness analysis.
    pub fn timeline(&self) -> &VersionTimeline {
        &self.timeline
    }

    /// Coordinator's view of the current read version.
    pub fn vr(&self) -> VersionNo {
        self.vr
    }

    /// Coordinator's view of the current update version.
    pub fn vu(&self) -> VersionNo {
        self.vu
    }

    /// Is an advancement currently running?
    pub fn busy(&self) -> bool {
        !matches!(self.phase, Phase::Idle)
    }

    fn start_advancement(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.busy() {
            // At most one instance runs at a time (paper §4.3 assumption);
            // remember that another was requested.
            self.pending_trigger = true;
            return;
        }
        let vu_new = self.vu.next();
        ctx.trace(|| format!("advancement to {vu_new} begins (phase 1)"));
        // vu_old stops accumulating *new* transactions now-ish; its close
        // time is the phase-1 start (conservative for staleness).
        self.timeline.record_closed(self.vu, ctx.now());
        self.cur = Some(AdvancementRecord {
            vu_new,
            started: ctx.now(),
            p1_done: ctx.now(),
            p2_done: ctx.now(),
            p3_done: ctx.now(),
            p4_done: ctx.now(),
            p2_rounds: 0,
            p4_rounds: 0,
        });
        self.phase = Phase::P1 {
            acks: BTreeSet::new(),
        };
        self.epoch += 1;
        for n in &self.nodes {
            ctx.send_tagged(*n, Msg::StartAdvancement { vu_new }, "advance");
        }
        self.arm_retransmit(ctx);
    }

    fn begin_polling(&mut self, ctx: &mut Ctx<'_, Msg>, version: VersionNo, is_phase2: bool) {
        self.poll_seq += 1;
        self.phase = Phase::Polling {
            version,
            round: self.poll_seq,
            rounds: 1,
            reports: BTreeMap::new(),
            prev: None,
            is_phase2,
        };
        self.epoch += 1;
        self.send_poll(ctx);
        self.arm_retransmit(ctx);
    }

    fn arm_retransmit(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if let Some(rt) = self.cfg.retransmit {
            ctx.schedule(rt, TIMER_RETRANSMIT_BASE + self.epoch);
        }
    }

    /// Re-send the current phase's outstanding control message to every
    /// node that has not answered yet. All handlers are idempotent, so
    /// over-sending is safe; under-sending (losing a broadcast with no
    /// retransmit) is what stalls an advancement forever.
    fn resend_missing(&mut self, ctx: &mut Ctx<'_, Msg>) {
        match &self.phase {
            Phase::Idle => {}
            Phase::P1 { acks } => {
                let vu_new = self.vu.next();
                for n in self.nodes.iter().filter(|n| !acks.contains(n)) {
                    ctx.send_tagged(*n, Msg::StartAdvancement { vu_new }, "advance");
                }
            }
            Phase::Polling {
                version,
                round,
                reports,
                ..
            } => {
                let (version, round) = (*version, *round);
                for n in self.nodes.iter().filter(|n| !reports.contains_key(n)) {
                    ctx.send_tagged(*n, Msg::ReadCounters { round, version }, "advance");
                }
            }
            Phase::P3 { acks } => {
                let vr_new = self.vr.next();
                for n in self.nodes.iter().filter(|n| !acks.contains(n)) {
                    ctx.send_tagged(*n, Msg::AdvanceRead { vr_new }, "advance");
                }
            }
            Phase::P4Gc { acks } => {
                let vr_new = self.vr;
                for n in self.nodes.iter().filter(|n| !acks.contains(n)) {
                    ctx.send_tagged(*n, Msg::Gc { vr_new }, "advance");
                }
            }
        }
    }

    fn send_poll(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let Phase::Polling { version, round, .. } = &self.phase else {
            return;
        };
        let (version, round) = (*version, *round);
        for n in &self.nodes {
            ctx.send_tagged(*n, Msg::ReadCounters { round, version }, "advance");
        }
    }

    fn handle_report(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        round: u64,
        version: VersionNo,
        snapshot: CounterSnapshot,
    ) {
        let n_nodes = self.nodes.len();
        let Phase::Polling {
            version: cur_version,
            round: cur_round,
            rounds,
            reports,
            prev,
            is_phase2,
        } = &mut self.phase
        else {
            return;
        };
        if round != *cur_round || version != *cur_version {
            // Stale or duplicated reply from an earlier round or phase.
            // `round` is globally monotone, so this check alone is
            // airtight; the version match is belt-and-braces (and what a
            // reader audits against the paper's per-version counters).
            return;
        }
        // A re-polled node overwrites its earlier snapshot: counters are
        // monotone, so the freshest snapshot is the most conservative.
        reports.insert(from, snapshot);
        if reports.len() < n_nodes {
            return;
        }
        // Full round collected: evaluate the two-round rule.
        let snaps: Vec<(NodeId, CounterSnapshot)> = std::mem::take(reports).into_iter().collect();
        let matrix = CounterMatrix::assemble(&snaps);
        let stable = matrix.balanced() && prev.as_ref() == Some(&matrix);
        let (version, is_phase2, rounds_used) = (*cur_version, *is_phase2, *rounds);
        if stable {
            let rounds = rounds_used;
            ctx.trace(|| {
                format!(
                    "version {version} drained after {rounds} rounds (phase {})",
                    if is_phase2 { 2 } else { 4 }
                )
            });
            if is_phase2 {
                if let Some(c) = &mut self.cur {
                    c.p2_done = ctx.now();
                    c.p2_rounds = rounds;
                }
                self.enter_phase3(ctx);
            } else {
                if let Some(c) = &mut self.cur {
                    c.p4_done = ctx.now();
                    c.p4_rounds = rounds;
                }
                self.begin_gc(ctx);
            }
        } else {
            *prev = Some(matrix);
            self.poll_seq += 1;
            *cur_round = self.poll_seq;
            *rounds += 1;
            let interval = self.cfg.poll_interval;
            ctx.schedule(interval, TIMER_POLL);
        }
    }

    fn enter_phase3(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let vr_new = self.vr.next();
        ctx.trace(|| format!("publishing read version {vr_new} (phase 3)"));
        self.timeline.record_published(vr_new, ctx.now());
        self.phase = Phase::P3 {
            acks: BTreeSet::new(),
        };
        self.epoch += 1;
        for n in &self.nodes {
            ctx.send_tagged(*n, Msg::AdvanceRead { vr_new }, "advance");
        }
        self.arm_retransmit(ctx);
    }

    fn begin_gc(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let vr_new = self.vr.next();
        self.vr = vr_new;
        self.vu = self.vu.next();
        self.phase = Phase::P4Gc {
            acks: BTreeSet::new(),
        };
        self.epoch += 1;
        for n in &self.nodes {
            ctx.send_tagged(*n, Msg::Gc { vr_new }, "advance");
        }
        self.arm_retransmit(ctx);
    }

    fn finish_advancement(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.trace(|| format!("advancement complete: vr={} vu={}", self.vr, self.vu));
        if let Some(rec) = self.cur.take() {
            self.records.push(rec);
        }
        self.phase = Phase::Idle;
        self.epoch += 1; // invalidate any armed retransmit timer
        if self.pending_trigger {
            self.pending_trigger = false;
            self.start_advancement(ctx);
        }
    }
}

impl Actor for Coordinator {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if let AdvancementPolicy::Periodic { first, .. } = self.cfg.policy {
            ctx.schedule(first, TIMER_POLICY);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::TriggerAdvancement => self.start_advancement(ctx),
            Msg::AdvanceAck { vu_new } => {
                // The echoed version is the ack's sequence number: a
                // duplicated or stale ack (earlier advancement, or this one
                // after the phase already moved on) fails the match.
                if vu_new != self.vu.next() {
                    return;
                }
                if let Phase::P1 { acks } = &mut self.phase {
                    acks.insert(from);
                    if acks.len() == self.nodes.len() {
                        if let Some(c) = &mut self.cur {
                            c.p1_done = ctx.now();
                        }
                        if self.cfg.skip_p2_drain {
                            // Test-only sabotage (see CoordinatorConfig):
                            // publish the new read version without waiting
                            // for the old update version to drain.
                            if let Some(c) = &mut self.cur {
                                c.p2_done = ctx.now();
                            }
                            self.enter_phase3(ctx);
                        } else {
                            // Phase 2: drain the old update version.
                            let vu_old = self.vu;
                            self.begin_polling(ctx, vu_old, true);
                        }
                    }
                }
            }
            Msg::CountersReport {
                round,
                version,
                snapshot,
            } => self.handle_report(ctx, from, round, version, snapshot),
            Msg::GcAck { vr_new } => {
                if vr_new != self.vr {
                    return; // ack for an older advancement's GC
                }
                if let Phase::P4Gc { acks } = &mut self.phase {
                    acks.insert(from);
                    if acks.len() == self.nodes.len() {
                        self.finish_advancement(ctx);
                    }
                }
            }
            Msg::AdvanceReadAck { vr_new } => {
                if vr_new != self.vr.next() {
                    return;
                }
                if let Phase::P3 { acks } = &mut self.phase {
                    acks.insert(from);
                    if acks.len() == self.nodes.len() {
                        if let Some(c) = &mut self.cur {
                            c.p3_done = ctx.now();
                        }
                        // Phase 4: drain the old read version's queries.
                        let vr_old = self.vr;
                        self.begin_polling(ctx, vr_old, false);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        match token {
            TIMER_POLICY => {
                self.start_advancement(ctx);
                if let AdvancementPolicy::Periodic { period, .. } = self.cfg.policy {
                    ctx.schedule(period, TIMER_POLICY);
                }
            }
            TIMER_POLL => self.send_poll(ctx),
            // Only the retransmit timer from the *current* epoch may act;
            // stale ones fall through to the no-op arm and do not re-arm,
            // so the coordinator still quiesces.
            t if t >= TIMER_RETRANSMIT_BASE
                && t - TIMER_RETRANSMIT_BASE == self.epoch
                && !matches!(self.phase, Phase::Idle) =>
            {
                self.resend_missing(ctx);
                self.arm_retransmit(ctx);
            }
            _ => {}
        }
    }
}
