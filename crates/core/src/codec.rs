//! Frame codec for [`Msg`]: the message plane's wire format.
//!
//! The storage crate's [`wire`](threev_storage::wire) module owns the byte
//! discipline (little-endian scalars, length-prefixed collections, framed
//! envelopes with an FNV-1a checksum); this module extends it to the
//! *message plane* so hot-path [`Msg`] values can be encoded once at the
//! sender and travel as framed byte slices instead of cloned enum trees.
//! The threaded runtime's framed delivery mode
//! (`threev_runtime::ThreadedRun::run_framed`) shares one encoding per
//! send across fault-plane duplicates and decodes borrowed slices at the
//! receiver.
//!
//! Robustness contract (pinned by `tests/codec_props.rs`): `decode` never
//! panics — truncated, bit-flipped, or synthesised garbage input yields
//! `Err`, and every successful decode of a frame we encoded reproduces the
//! original message exactly.

use threev_analysis::ReadObservation;
use threev_model::{NodeId, SubtxnId, VersionNo};
use threev_storage::wire::{decode_frame, encode_frame, ByteReader, ByteWriter, WireError};

use crate::counters::CounterSnapshot;
use crate::msg::Msg;

/// Protocol version stamped into every message frame. Bump on any layout
/// change; the decoder rejects frames from other versions.
pub const MSG_WIRE_VERSION: u16 = 1;

/// Frame `kind` discriminants, one per [`Msg`] variant. Stable on the
/// wire: append new variants, never renumber.
mod tag {
    pub const SUBMIT: u8 = 0;
    pub const TXN_DONE: u8 = 1;
    pub const READ_RESULTS: u8 = 2;
    pub const SUBTXN: u8 = 3;
    pub const SUBTREE_DONE: u8 = 4;
    pub const COMPENSATE: u8 = 5;
    pub const XP_RESOLVE: u8 = 6;
    pub const START_ADVANCEMENT: u8 = 7;
    pub const ADVANCE_ACK: u8 = 8;
    pub const READ_COUNTERS: u8 = 9;
    pub const COUNTERS_REPORT: u8 = 10;
    pub const ADVANCE_READ: u8 = 11;
    pub const ADVANCE_READ_ACK: u8 = 12;
    pub const GC: u8 = 13;
    pub const GC_ACK: u8 = 14;
    pub const TRIGGER_ADVANCEMENT: u8 = 15;
    pub const NC_PREPARE: u8 = 16;
    pub const NC_VOTE: u8 = 17;
    pub const NC_DECISION: u8 = 18;
    pub const RELEASE_LOCKS: u8 = 19;
}

fn put_bool(w: &mut ByteWriter, b: bool) {
    w.u8(u8::from(b));
}

fn get_bool(r: &mut ByteReader<'_>) -> Result<bool, WireError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(WireError("bool byte is neither 0 nor 1")),
    }
}

fn put_opt_node(w: &mut ByteWriter, n: Option<NodeId>) {
    match n {
        None => w.u8(0),
        Some(id) => {
            w.u8(1);
            w.node(id);
        }
    }
}

fn get_opt_node(r: &mut ByteReader<'_>) -> Result<Option<NodeId>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.node()?)),
        _ => Err(WireError("unknown Option<NodeId> tag")),
    }
}

fn put_opt_version(w: &mut ByteWriter, v: Option<VersionNo>) {
    match v {
        None => w.u8(0),
        Some(ver) => {
            w.u8(1);
            w.version(ver);
        }
    }
}

fn get_opt_version(r: &mut ByteReader<'_>) -> Result<Option<VersionNo>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.version()?)),
        _ => Err(WireError("unknown Option<VersionNo> tag")),
    }
}

fn put_subtxn_id(w: &mut ByteWriter, s: SubtxnId) {
    w.node(s.spawner);
    w.u64(s.seq);
}

fn get_subtxn_id(r: &mut ByteReader<'_>) -> Result<SubtxnId, WireError> {
    let spawner = r.node()?;
    let seq = r.u64()?;
    Ok(SubtxnId { spawner, seq })
}

fn put_read_observation(w: &mut ByteWriter, o: &ReadObservation) {
    w.key(o.key);
    put_opt_version(w, o.version);
    w.value(&o.value);
}

fn get_read_observation(r: &mut ByteReader<'_>) -> Result<ReadObservation, WireError> {
    let key = r.key()?;
    let version = get_opt_version(r)?;
    let value = r.value()?;
    Ok(ReadObservation {
        key,
        version,
        value,
    })
}

fn put_counter_rows(w: &mut ByteWriter, rows: &[(NodeId, u64)]) {
    w.len(rows.len());
    for &(n, c) in rows {
        w.node(n);
        w.u64(c);
    }
}

fn get_counter_rows(r: &mut ByteReader<'_>) -> Result<Vec<(NodeId, u64)>, WireError> {
    let n = r.read_len()?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let node = r.node()?;
        let count = r.u64()?;
        rows.push((node, count));
    }
    Ok(rows)
}

fn put_counter_snapshot(w: &mut ByteWriter, s: &CounterSnapshot) {
    w.version(s.version);
    put_counter_rows(w, &s.requests_to);
    put_counter_rows(w, &s.completions_from);
}

fn get_counter_snapshot(r: &mut ByteReader<'_>) -> Result<CounterSnapshot, WireError> {
    let version = r.version()?;
    let requests_to = get_counter_rows(r)?;
    let completions_from = get_counter_rows(r)?;
    Ok(CounterSnapshot {
        version,
        requests_to,
        completions_from,
    })
}

impl Msg {
    /// Encode into one complete frame (header + payload). Fails only when
    /// a payload exceeds the frame bound — in practice a plan large enough
    /// to overflow `MAX_FRAME_PAYLOAD` (1 MiB).
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut w = ByteWriter::new();
        let kind = match self {
            Msg::Submit {
                txn,
                kind,
                plan,
                client,
                fail_node,
            } => {
                w.txn(*txn);
                w.txn_kind(*kind);
                w.sub_plan(plan);
                w.node(*client);
                put_opt_node(&mut w, *fail_node);
                tag::SUBMIT
            }
            Msg::TxnDone {
                txn,
                version,
                committed,
            } => {
                w.txn(*txn);
                w.version(*version);
                put_bool(&mut w, *committed);
                tag::TXN_DONE
            }
            Msg::ReadResults { txn, reads } => {
                w.txn(*txn);
                w.len(reads.len());
                for o in reads {
                    put_read_observation(&mut w, o);
                }
                tag::READ_RESULTS
            }
            Msg::Subtxn {
                txn,
                kind,
                version,
                plan,
                parent_sub,
                client,
                fail_node,
            } => {
                w.txn(*txn);
                w.txn_kind(*kind);
                w.version(*version);
                w.sub_plan(plan);
                put_subtxn_id(&mut w, *parent_sub);
                w.node(*client);
                put_opt_node(&mut w, *fail_node);
                tag::SUBTXN
            }
            Msg::SubtreeDone {
                txn,
                parent_sub,
                participants,
                clean,
            } => {
                w.txn(*txn);
                put_subtxn_id(&mut w, *parent_sub);
                w.len(participants.len());
                for &p in participants {
                    w.node(p);
                }
                put_bool(&mut w, *clean);
                tag::SUBTREE_DONE
            }
            Msg::Compensate { txn, version } => {
                w.txn(*txn);
                w.version(*version);
                tag::COMPENSATE
            }
            Msg::XpResolve { txn } => {
                w.txn(*txn);
                tag::XP_RESOLVE
            }
            Msg::StartAdvancement { vu_new } => {
                w.version(*vu_new);
                tag::START_ADVANCEMENT
            }
            Msg::AdvanceAck { vu_new } => {
                w.version(*vu_new);
                tag::ADVANCE_ACK
            }
            Msg::ReadCounters { round, version } => {
                w.u64(*round);
                w.version(*version);
                tag::READ_COUNTERS
            }
            Msg::CountersReport {
                round,
                version,
                snapshot,
            } => {
                w.u64(*round);
                w.version(*version);
                put_counter_snapshot(&mut w, snapshot);
                tag::COUNTERS_REPORT
            }
            Msg::AdvanceRead { vr_new } => {
                w.version(*vr_new);
                tag::ADVANCE_READ
            }
            Msg::AdvanceReadAck { vr_new } => {
                w.version(*vr_new);
                tag::ADVANCE_READ_ACK
            }
            Msg::Gc { vr_new } => {
                w.version(*vr_new);
                tag::GC
            }
            Msg::GcAck { vr_new } => {
                w.version(*vr_new);
                tag::GC_ACK
            }
            Msg::TriggerAdvancement => tag::TRIGGER_ADVANCEMENT,
            Msg::NcPrepare { txn } => {
                w.txn(*txn);
                tag::NC_PREPARE
            }
            Msg::NcVote { txn, node, yes } => {
                w.txn(*txn);
                w.node(*node);
                put_bool(&mut w, *yes);
                tag::NC_VOTE
            }
            Msg::NcDecision { txn, commit } => {
                w.txn(*txn);
                put_bool(&mut w, *commit);
                tag::NC_DECISION
            }
            Msg::ReleaseLocks { txn } => {
                w.txn(*txn);
                tag::RELEASE_LOCKS
            }
        };
        encode_frame(MSG_WIRE_VERSION, kind, &w.into_bytes())
    }

    /// Decode one complete frame produced by [`Msg::encode`]. Borrows the
    /// input throughout — only the structured fields allocate. Never
    /// panics on malformed input: truncation, corruption (checksum), an
    /// unknown version or kind, and trailing payload bytes all yield
    /// `Err`.
    pub fn decode(bytes: &[u8]) -> Result<Msg, WireError> {
        let (header, payload) = decode_frame(bytes)?;
        if header.version != MSG_WIRE_VERSION {
            return Err(WireError("unsupported message protocol version"));
        }
        let mut r = ByteReader::new(payload);
        let msg = match header.kind {
            tag::SUBMIT => {
                let txn = r.txn()?;
                let kind = r.txn_kind()?;
                let plan = r.sub_plan()?;
                let client = r.node()?;
                let fail_node = get_opt_node(&mut r)?;
                Msg::Submit {
                    txn,
                    kind,
                    plan,
                    client,
                    fail_node,
                }
            }
            tag::TXN_DONE => {
                let txn = r.txn()?;
                let version = r.version()?;
                let committed = get_bool(&mut r)?;
                Msg::TxnDone {
                    txn,
                    version,
                    committed,
                }
            }
            tag::READ_RESULTS => {
                let txn = r.txn()?;
                let n = r.read_len()?;
                let mut reads = Vec::with_capacity(n);
                for _ in 0..n {
                    reads.push(get_read_observation(&mut r)?);
                }
                Msg::ReadResults { txn, reads }
            }
            tag::SUBTXN => {
                let txn = r.txn()?;
                let kind = r.txn_kind()?;
                let version = r.version()?;
                let plan = r.sub_plan()?;
                let parent_sub = get_subtxn_id(&mut r)?;
                let client = r.node()?;
                let fail_node = get_opt_node(&mut r)?;
                Msg::Subtxn {
                    txn,
                    kind,
                    version,
                    plan,
                    parent_sub,
                    client,
                    fail_node,
                }
            }
            tag::SUBTREE_DONE => {
                let txn = r.txn()?;
                let parent_sub = get_subtxn_id(&mut r)?;
                let n = r.read_len()?;
                let mut participants = Vec::with_capacity(n);
                for _ in 0..n {
                    participants.push(r.node()?);
                }
                let clean = get_bool(&mut r)?;
                Msg::SubtreeDone {
                    txn,
                    parent_sub,
                    participants,
                    clean,
                }
            }
            tag::COMPENSATE => {
                let txn = r.txn()?;
                let version = r.version()?;
                Msg::Compensate { txn, version }
            }
            tag::XP_RESOLVE => Msg::XpResolve { txn: r.txn()? },
            tag::START_ADVANCEMENT => Msg::StartAdvancement {
                vu_new: r.version()?,
            },
            tag::ADVANCE_ACK => Msg::AdvanceAck {
                vu_new: r.version()?,
            },
            tag::READ_COUNTERS => {
                let round = r.u64()?;
                let version = r.version()?;
                Msg::ReadCounters { round, version }
            }
            tag::COUNTERS_REPORT => {
                let round = r.u64()?;
                let version = r.version()?;
                let snapshot = get_counter_snapshot(&mut r)?;
                Msg::CountersReport {
                    round,
                    version,
                    snapshot,
                }
            }
            tag::ADVANCE_READ => Msg::AdvanceRead {
                vr_new: r.version()?,
            },
            tag::ADVANCE_READ_ACK => Msg::AdvanceReadAck {
                vr_new: r.version()?,
            },
            tag::GC => Msg::Gc {
                vr_new: r.version()?,
            },
            tag::GC_ACK => Msg::GcAck {
                vr_new: r.version()?,
            },
            tag::TRIGGER_ADVANCEMENT => Msg::TriggerAdvancement,
            tag::NC_PREPARE => Msg::NcPrepare { txn: r.txn()? },
            tag::NC_VOTE => {
                let txn = r.txn()?;
                let node = r.node()?;
                let yes = get_bool(&mut r)?;
                Msg::NcVote { txn, node, yes }
            }
            tag::NC_DECISION => {
                let txn = r.txn()?;
                let commit = get_bool(&mut r)?;
                Msg::NcDecision { txn, commit }
            }
            tag::RELEASE_LOCKS => Msg::ReleaseLocks { txn: r.txn()? },
            _ => return Err(WireError("unknown Msg frame kind")),
        };
        if !r.is_exhausted() {
            return Err(WireError("trailing bytes after Msg payload"));
        }
        Ok(msg)
    }
}

impl threev_sim::WireCodec for Msg {
    fn encode_wire(&self) -> Result<Vec<u8>, &'static str> {
        self.encode().map_err(|e| e.0)
    }

    fn decode_wire(bytes: &[u8]) -> Result<Self, &'static str> {
        Msg::decode(bytes).map_err(|e| e.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_model::{Key, SubtxnPlan, TxnId, TxnKind, UpdateOp, Value};

    fn sample_plan() -> SubtxnPlan {
        let child = SubtxnPlan::new(NodeId(1)).update(Key(9), UpdateOp::Add(4));
        SubtxnPlan::new(NodeId(0))
            .read(Key(1))
            .update(Key(2), UpdateOp::Append { amount: 1, tag: 7 })
            .child(child)
    }

    /// One instance of every variant — kept in sync with `msg.rs` by the
    /// exhaustiveness of `Msg::encode`'s match.
    pub(crate) fn every_variant() -> Vec<Msg> {
        let txn = TxnId::new(42, NodeId(3));
        let sub = SubtxnId {
            spawner: NodeId(2),
            seq: 17,
        };
        vec![
            Msg::Submit {
                txn,
                kind: TxnKind::Commuting,
                plan: sample_plan(),
                client: NodeId(9),
                fail_node: Some(NodeId(1)),
            },
            Msg::TxnDone {
                txn,
                version: VersionNo(5),
                committed: true,
            },
            Msg::ReadResults {
                txn,
                reads: vec![ReadObservation {
                    key: Key(7),
                    version: Some(VersionNo(2)),
                    value: Value::Counter(-3),
                }],
            },
            Msg::Subtxn {
                txn,
                kind: TxnKind::NonCommuting,
                version: VersionNo(4),
                plan: sample_plan(),
                parent_sub: sub,
                client: NodeId(9),
                fail_node: None,
            },
            Msg::SubtreeDone {
                txn,
                parent_sub: sub,
                participants: vec![NodeId(0), NodeId(5)],
                clean: false,
            },
            Msg::Compensate {
                txn,
                version: VersionNo(3),
            },
            Msg::XpResolve { txn },
            Msg::StartAdvancement {
                vu_new: VersionNo(8),
            },
            Msg::AdvanceAck {
                vu_new: VersionNo(8),
            },
            Msg::ReadCounters {
                round: 6,
                version: VersionNo(7),
            },
            Msg::CountersReport {
                round: 6,
                version: VersionNo(7),
                snapshot: CounterSnapshot {
                    version: VersionNo(7),
                    requests_to: vec![(NodeId(0), 11), (NodeId(1), 0)],
                    completions_from: vec![(NodeId(2), 9)],
                },
            },
            Msg::AdvanceRead {
                vr_new: VersionNo(8),
            },
            Msg::AdvanceReadAck {
                vr_new: VersionNo(8),
            },
            Msg::Gc {
                vr_new: VersionNo(8),
            },
            Msg::GcAck {
                vr_new: VersionNo(8),
            },
            Msg::TriggerAdvancement,
            Msg::NcPrepare { txn },
            Msg::NcVote {
                txn,
                node: NodeId(4),
                yes: true,
            },
            Msg::NcDecision { txn, commit: false },
            Msg::ReleaseLocks { txn },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for msg in every_variant() {
            let bytes = msg.encode().expect("encode");
            let back = Msg::decode(&bytes).expect("decode");
            assert_eq!(format!("{msg:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        let msg = Msg::TriggerAdvancement;
        let payload = [0u8; 1];
        let framed = encode_frame(MSG_WIRE_VERSION, 15, &payload).unwrap();
        assert!(Msg::decode(&framed).is_err());
        let _ = msg; // exercised for symmetry with the clean round trip
    }

    #[test]
    fn wrong_version_rejected() {
        let framed = encode_frame(MSG_WIRE_VERSION + 1, 15, &[]).unwrap();
        assert_eq!(
            Msg::decode(&framed),
            Err(WireError("unsupported message protocol version"))
        );
    }

    #[test]
    fn unknown_kind_rejected() {
        let framed = encode_frame(MSG_WIRE_VERSION, 200, &[]).unwrap();
        assert_eq!(
            Msg::decode(&framed),
            Err(WireError("unknown Msg frame kind"))
        );
    }
}
