//! The 3V wire protocol.
//!
//! Every message is asynchronous: user-transaction handling never blocks on
//! a reply (Theorem 4.2). The only request/response exchanges are between
//! the advancement coordinator and nodes (acks and counter polls), and the
//! NC3V two-phase commit — both of which, per the paper, either do not touch
//! user transactions at all or only the non-well-behaved ones.

use threev_analysis::ReadObservation;
use threev_model::{NodeId, SubtxnId, SubtxnPlan, TxnId, TxnKind, VersionNo};

use crate::counters::CounterSnapshot;

/// Messages exchanged in a 3V cluster (nodes, coordinator, client).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg {
    // ------------------------------------------------------------- client
    /// Client submits a root transaction to its root node.
    Submit {
        /// Transaction id (assigned by the client).
        txn: TxnId,
        /// Kind, which selects the execution path.
        kind: TxnKind,
        /// Root subtransaction plan.
        plan: SubtxnPlan,
        /// Actor to report results to.
        client: NodeId,
        /// Fault injection: subtransactions landing on this node abort and
        /// trigger compensation (experiment X10).
        fail_node: Option<NodeId>,
    },
    /// Node → client: transaction finished.
    TxnDone {
        /// Transaction id.
        txn: TxnId,
        /// Version the transaction executed in.
        version: VersionNo,
        /// Committed (`true`) or aborted/compensated (`false`).
        committed: bool,
    },
    /// Node → client: reads collected by one subtransaction.
    ReadResults {
        /// Transaction id.
        txn: TxnId,
        /// Observations, in step order.
        reads: Vec<ReadObservation>,
    },

    // ---------------------------------------------------- subtransactions
    /// Parent node ships a child subtransaction to its node (§4.1 step 5).
    Subtxn {
        /// Transaction id.
        txn: TxnId,
        /// Kind inherited from the root.
        kind: TxnKind,
        /// The transaction version `V(T)`, carried by every descendant.
        version: VersionNo,
        /// The child's plan subtree.
        plan: SubtxnPlan,
        /// Parent subtransaction (for the completion-notice tree).
        parent_sub: SubtxnId,
        /// Client to report reads to.
        client: NodeId,
        /// Fault injection marker (propagated from `Submit`).
        fail_node: Option<NodeId>,
    },
    /// Child node → parent node: the child's whole subtree terminated.
    /// Pure user-level bookkeeping — no subtransaction ever waits on it.
    SubtreeDone {
        /// Transaction id.
        txn: TxnId,
        /// The parent subtransaction being notified.
        parent_sub: SubtxnId,
        /// Nodes that executed any part of the subtree (for NC3V 2PC and
        /// lock clean-up fan-out).
        participants: Vec<NodeId>,
        /// Whether any subtransaction in the subtree aborted.
        clean: bool,
    },
    /// Compensating subtransaction (§3.2): undo transaction `txn`'s local
    /// effects and propagate to its other neighbours. Counted in `R`/`C`
    /// exactly like an ordinary subtransaction — except across a partition
    /// boundary, where the hop is uncounted (sender and receiver live in
    /// different version spaces) and the receiver's gauge pin keeps its
    /// footprint alive instead.
    Compensate {
        /// Transaction to compensate.
        txn: TxnId,
        /// The version the transaction executed in *at the sender*. A
        /// receiver in another partition ignores it and compensates at its
        /// own footprint's version.
        version: VersionNo,
    },
    /// Root node → every participant of a cross-partition tree, on clean
    /// commit only: the transaction resolved, release any gauge pins held
    /// for it. Fire-and-forget and uncounted (it rides the reliable data
    /// plane); on abort no resolve is sent — the compensation flood is the
    /// release signal, which keeps the two from racing.
    XpResolve {
        /// The resolved transaction.
        txn: TxnId,
    },

    // ------------------------------------------------- version advancement
    /// Phase 1: coordinator → nodes, switch to the new update version.
    StartAdvancement {
        /// The new update version `vu_new = vu_old + 1`.
        vu_new: VersionNo,
    },
    /// Phase 1 ack.
    AdvanceAck {
        /// Echoed version.
        vu_new: VersionNo,
    },
    /// Phases 2/4: coordinator polls one version's counters.
    ReadCounters {
        /// Poll round (monotone per advancement).
        round: u64,
        /// Version being drained.
        version: VersionNo,
    },
    /// A node's atomic counter snapshot.
    CountersReport {
        /// Echoed round.
        round: u64,
        /// Echoed version being drained. Rounds restart at zero for each
        /// polling phase, so under duplication/retransmit the coordinator
        /// needs the version to reject a stale phase-2 report arriving
        /// during phase 4 (and vice versa).
        version: VersionNo,
        /// The snapshot.
        snapshot: CounterSnapshot,
    },
    /// Phase 3: coordinator → nodes, publish the new read version.
    AdvanceRead {
        /// The new read version `vr_new = vr_old + 1`.
        vr_new: VersionNo,
    },
    /// Phase 3 ack.
    AdvanceReadAck {
        /// Echoed version.
        vr_new: VersionNo,
    },
    /// Phase 4 finale: garbage-collect versions `< vr_new`.
    Gc {
        /// The surviving read version.
        vr_new: VersionNo,
    },
    /// Node → coordinator: garbage collection done. The coordinator waits
    /// for all acks before the advancement ends — otherwise a prompt next
    /// advancement could open a fourth version while a GC notice is still
    /// in flight, breaking the ≤3-copies bound.
    GcAck {
        /// Echoed read version.
        vr_new: VersionNo,
    },
    /// Driver → coordinator: run one advancement now (manual policy).
    TriggerAdvancement,

    // ------------------------------------------------------------- NC3V
    /// 2PC prepare from the NC transaction's root node.
    NcPrepare {
        /// Transaction id.
        txn: TxnId,
    },
    /// Participant vote.
    NcVote {
        /// Transaction id.
        txn: TxnId,
        /// Voting node.
        node: NodeId,
        /// `true` = prepared to commit.
        yes: bool,
    },
    /// Coordinator decision broadcast.
    NcDecision {
        /// Transaction id.
        txn: TxnId,
        /// `true` = commit, `false` = roll back.
        commit: bool,
    },
    /// Asynchronous clean-up of commute locks after a well-behaved
    /// transaction tree completes (§5: "a special clean-up phase … release
    /// all commute locks … asynchronous with respect to well-behaved
    /// transactions").
    ReleaseLocks {
        /// Transaction whose locks are released.
        txn: TxnId,
    },
}

/// Client-observable protocol events, extracted by the shared client actor.
#[derive(Clone, Debug)]
pub enum ClientEvent {
    /// Transaction finished.
    Done {
        /// Transaction id.
        txn: TxnId,
        /// Version it executed in, if the engine versions data.
        version: Option<VersionNo>,
        /// Commit (`true`) or abort (`false`).
        committed: bool,
    },
    /// Read observations arrived.
    Reads {
        /// Transaction id.
        txn: TxnId,
        /// The observations.
        reads: Vec<ReadObservation>,
    },
}

/// Implemented by each engine's message type so the one client actor in
/// [`crate::client`] can drive any engine (3V or the baselines).
///
/// `Clone` is part of the wire contract: the transport's fault plane may
/// deliver any message twice, so every protocol message must be
/// duplicable.
pub trait ProtocolMsg: Sized + Clone {
    /// Build the submission message for a transaction.
    fn submit(
        txn: TxnId,
        kind: TxnKind,
        plan: SubtxnPlan,
        client: NodeId,
        fail_node: Option<NodeId>,
    ) -> Self;

    /// Interpret an incoming message as a client event, if it is one.
    fn client_event(self) -> Option<ClientEvent>;
}

impl ProtocolMsg for Msg {
    fn submit(
        txn: TxnId,
        kind: TxnKind,
        plan: SubtxnPlan,
        client: NodeId,
        fail_node: Option<NodeId>,
    ) -> Self {
        Msg::Submit {
            txn,
            kind,
            plan,
            client,
            fail_node,
        }
    }

    fn client_event(self) -> Option<ClientEvent> {
        match self {
            Msg::TxnDone {
                txn,
                version,
                committed,
            } => Some(ClientEvent::Done {
                txn,
                version: Some(version),
                committed,
            }),
            Msg::ReadResults { txn, reads } => Some(ClientEvent::Reads { txn, reads }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_model::Key;

    #[test]
    fn submit_round_trip() {
        let txn = TxnId::new(1, NodeId(0));
        let plan = SubtxnPlan::new(NodeId(0)).read(Key(1));
        let m = Msg::submit(txn, TxnKind::ReadOnly, plan, NodeId(9), None);
        assert!(matches!(m, Msg::Submit { .. }));
        assert!(m.client_event().is_none());
    }

    #[test]
    fn client_events_extracted() {
        let txn = TxnId::new(1, NodeId(0));
        let done = Msg::TxnDone {
            txn,
            version: VersionNo(2),
            committed: true,
        };
        match done.client_event() {
            Some(ClientEvent::Done {
                version: Some(v),
                committed: true,
                ..
            }) => assert_eq!(v, VersionNo(2)),
            other => panic!("unexpected: {other:?}"),
        }
        let reads = Msg::ReadResults { txn, reads: vec![] };
        assert!(matches!(
            reads.client_event(),
            Some(ClientEvent::Reads { .. })
        ));
        assert!(Msg::TriggerAdvancement.client_event().is_none());
    }
}
