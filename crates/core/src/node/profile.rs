//! Per-stage cost profiling for the node engine's hot path.
//!
//! The engine's per-message work decomposes into five stages — plan
//! **validation**, **lock** acquisition, **store** reads/updates,
//! **counter** maintenance, and the **WAL** hook — plus the residual
//! **dispatch** bucket (everything else: routing, tracker bookkeeping,
//! message construction). `BENCH_hotpath.json` reports where the cycles go
//! so optimisation effort lands on the stage that actually caps
//! throughput (ROADMAP item 3).
//!
//! Design constraints, in order:
//!
//! 1. **Observationally free.** Profiling must never change protocol
//!    behaviour. The hooks only *read* a clock and *add* to counters that
//!    nothing in the engine ever consults; the `profiler_is_free` guard in
//!    `tests/stripe_equivalence.rs` asserts fingerprint-identical runs
//!    with profiling on and off.
//! 2. **No-op when disabled.** `ProfileMode::Off` (the default) keeps the
//!    node's profile state `None`; every hook is an `Option` check that
//!    branch-predicts away.
//! 3. **Deterministic core.** The engine crate never touches a wall
//!    clock — the *harness* injects one as a plain `fn() -> u64`
//!    ([`ClockFn`]). The DES and model checker stay clock-free; tests
//!    inject a counting fake; `threev-bench` injects a monotonic
//!    nanosecond clock.

/// A monotonic time source supplied by the harness: returns nanoseconds
/// (or any monotone unit — the breakdown only ever reports sums and
/// shares). A plain `fn` pointer so [`super::NodeConfig`] stays `Clone`
/// and the engine cannot capture ambient nondeterminism.
pub type ClockFn = fn() -> u64;

/// Whether (and with which clock) a node profiles its hot-path stages.
#[derive(Clone, Copy, Debug, Default)]
pub enum ProfileMode {
    /// No profiling: zero state, hooks compile to a `None` check.
    #[default]
    Off,
    /// Profile every stage using the supplied monotonic clock.
    On(ClockFn),
}

/// The instrumented stages of one message's execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Pre-execution plan validation (`check_read`/`check_update` pre-pass).
    Validate = 0,
    /// NC3V lock acquisition, including wait-die decisions.
    Lock = 1,
    /// Store reads and updates (version-chain work).
    Store = 2,
    /// R/C counter maintenance.
    Counter = 3,
    /// WAL append hook (0 when durability is off).
    Wal = 4,
    /// Whole-message dispatch; stages above are nested inside it, the
    /// remainder is routing/bookkeeping overhead.
    Dispatch = 5,
}

/// Number of [`Stage`]s (array sizing).
pub const N_STAGES: usize = 6;

/// All stages, in report order.
pub const STAGES: [Stage; N_STAGES] = [
    Stage::Validate,
    Stage::Lock,
    Stage::Store,
    Stage::Counter,
    Stage::Wal,
    Stage::Dispatch,
];

impl Stage {
    /// Stable snake_case name used in `BENCH_hotpath.json`.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Validate => "validate",
            Stage::Lock => "lock",
            Stage::Store => "store",
            Stage::Counter => "counter",
            Stage::Wal => "wal",
            Stage::Dispatch => "dispatch",
        }
    }
}

/// Accumulated per-stage cost for one node.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Total clock units spent in each stage (indexed by `Stage as usize`).
    pub ns: [u64; N_STAGES],
    /// Times each stage was entered.
    pub calls: [u64; N_STAGES],
}

impl StageBreakdown {
    /// Merge another breakdown into this one (cluster-level aggregation).
    pub fn merge(&mut self, other: &StageBreakdown) {
        for i in 0..N_STAGES {
            self.ns[i] += other.ns[i];
            self.calls[i] += other.calls[i];
        }
    }

    /// Total clock units attributed to [`Stage::Dispatch`] (the envelope).
    pub fn total_ns(&self) -> u64 {
        self.ns[Stage::Dispatch as usize]
    }

    /// Clock units not attributed to any nested stage: dispatch envelope
    /// minus the five instrumented stages (saturating — a clock that
    /// jumps can make nested sums exceed the envelope).
    pub fn other_ns(&self) -> u64 {
        let nested: u64 = STAGES[..N_STAGES - 1]
            .iter()
            .map(|&s| self.ns[s as usize])
            .sum();
        self.total_ns().saturating_sub(nested)
    }
}

/// Live profiling state held by a node when `ProfileMode::On`.
#[derive(Clone, Debug)]
pub(super) struct ProfState {
    pub(super) clock: ClockFn,
    pub(super) breakdown: StageBreakdown,
}

impl ProfState {
    pub(super) fn new(clock: ClockFn) -> Self {
        ProfState {
            clock,
            breakdown: StageBreakdown::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_clock() -> u64 {
        use std::sync::atomic::{AtomicU64, Ordering};
        static T: AtomicU64 = AtomicU64::new(0);
        T.fetch_add(3, Ordering::Relaxed)
    }

    #[test]
    fn breakdown_merges_and_attributes_other() {
        let mut a = StageBreakdown::default();
        a.ns[Stage::Validate as usize] = 10;
        a.ns[Stage::Store as usize] = 20;
        a.ns[Stage::Dispatch as usize] = 50;
        a.calls[Stage::Dispatch as usize] = 2;
        let mut b = a.clone();
        b.merge(&a);
        assert_eq!(b.total_ns(), 100);
        assert_eq!(b.other_ns(), 100 - 20 - 40);
        assert_eq!(b.calls[Stage::Dispatch as usize], 4);
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<_> = STAGES.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["validate", "lock", "store", "counter", "wal", "dispatch"]
        );
    }

    #[test]
    fn prof_state_ticks_injected_clock() {
        let p = ProfState::new(fake_clock);
        let t0 = (p.clock)();
        let t1 = (p.clock)();
        assert!(t1 > t0, "injected clock is monotone");
    }
}
