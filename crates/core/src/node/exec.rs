//! Subtransaction execution: §4.1 steps 1–6, §4.2 queries, §5 NC3V.
//!
//! Everything between a subtransaction's arrival and its termination lives
//! here — fault injection, tombstone checks, lock acquisition with
//! wait-die, local step execution, child spawning, completion-notice
//! tracking, and the non-commuting path (gate admission, stale-version
//! aborts, two-phase commitment).

use std::collections::{BTreeMap, BTreeSet};

use threev_analysis::ReadObservation;
use threev_durability::WalOp;
use threev_model::{Key, NodeId, OpStep, SubtxnId, SubtxnPlan, TxnId, TxnKind, VersionNo};
use threev_sim::Ctx;
use threev_storage::{LockDecision, LockMode, StoreError};

use crate::msg::Msg;

use super::{Job, NcCoord, NcRootCtx, Parked, Stage, SubTracker, ThreeVNode, TimerAction};

impl ThreeVNode {
    // ------------------------------------------------------ job execution

    /// Entry point for any subtransaction (root or descendant) once its
    /// version is fixed. Handles fault injection, tombstones, and locks,
    /// then executes.
    pub(super) fn run_job(&mut self, ctx: &mut Ctx<'_, Msg>, job: Job) {
        // Fault injection (experiment X10): this subtransaction aborts.
        if job.fail_node == Some(self.me) && job.kind == TxnKind::Commuting {
            self.abort_subtxn(ctx, &job);
            return;
        }
        // Compensation got here first (tombstone), or already swept through
        // this node (compensated footprint): the transaction is aborted and
        // this subtransaction must not execute (nor spawn its subtree).
        let compensated_here = self.footprints.get(&job.txn).is_some_and(|f| f.compensated);
        if self.tombstones.contains(&job.txn) || compensated_here {
            self.stats.skipped_tombstoned += 1;
            self.wal(WalOp::IncCompletion {
                version: job.version,
                from: job.source,
            });
            self.counters.inc_completion(job.version, job.source);
            // A cross-partition compensate may have overtaken the subtxn
            // that pinned: the transaction is dead here, so the re-root's
            // pin (taken just before this call) must not outlive it.
            self.release_xp_pins(job.txn);
            self.finish_without_effects(ctx, &job, false);
            return;
        }
        // Validate every local step before taking locks or applying
        // anything: a malformed subtransaction (unknown key, no visible
        // base version, type-mismatched op) terminates its subtree cleanly
        // instead of panicking the node.
        let t0 = self.prof_start();
        let validated = self.validate_plan(&job);
        self.prof_end(Stage::Validate, t0);
        if let Err(e) = validated {
            self.reject_malformed(ctx, &job, e);
            return;
        }
        // Locks (NC3V mode only; reads take none — §4.2).
        if self.cfg.locks_enabled {
            let mode = match job.kind {
                TxnKind::Commuting => Some(LockMode::Commute),
                TxnKind::NonCommuting => Some(LockMode::Exclusive),
                TxnKind::ReadOnly => None,
            };
            if let Some(mode) = mode {
                let mut keys: Vec<(Key, LockMode)> =
                    job.plan.steps.iter().map(|s| (s.key(), mode)).collect();
                keys.sort_by_key(|(k, _)| *k);
                keys.dedup_by_key(|(k, _)| *k);
                self.acquire_and_run(ctx, Parked { keys, next: 0, job });
                return;
            }
        }
        self.execute_job(ctx, job);
    }

    /// Pre-pass over the plan's local steps against the store — no stats
    /// moved, nothing applied, so rejection needs no undo.
    fn validate_plan(&self, job: &Job) -> Result<(), StoreError> {
        for step in &job.plan.steps {
            match step {
                OpStep::Read(key) => self.store.check_read(*key, job.version)?,
                OpStep::Update(key, op) => self.store.check_update(*key, job.version, *op)?,
            }
        }
        Ok(())
    }

    /// A plan failed validation: terminate the subtree without effects.
    /// Commuting/read-only subtransactions complete unclean (the root
    /// reports the transaction aborted); non-commuting ones take the
    /// existing doom path so the 2PC round aborts globally. Either way the
    /// completion counters stay balanced — the version window can still
    /// advance past the rejected transaction (§2.2).
    fn reject_malformed(&mut self, ctx: &mut Ctx<'_, Msg>, job: &Job, err: StoreError) {
        self.stats.malformed_rejected += 1;
        if ctx.tracing() {
            let e = err.with_window(self.vr, self.vu);
            ctx.trace(|| format!("{}: rejects subtx of {}: {}", self.me, job.txn, e));
        }
        if job.kind == TxnKind::NonCommuting {
            self.doom_nc(ctx, job);
        } else {
            self.wal(WalOp::IncCompletion {
                version: job.version,
                from: job.source,
            });
            self.counters.inc_completion(job.version, job.source);
            // Sharded clusters cannot leave a rejected commuting tree
            // uncompensated: gauge pins at partition-entry nodes are only
            // released by an XpResolve (which an unclean tree never sends)
            // or the compensation flood — so start the flood, exactly as a
            // fault-injected abort would. Single-partition behaviour is
            // unchanged (the root just reports the transaction aborted).
            if job.kind == TxnKind::Commuting && !self.cfg.topology.is_single() {
                self.tombstones.insert(job.txn);
                self.stats.tombstones += 1;
                self.release_xp_pins(job.txn);
                if let Some((parent_node, _)) = job.parent {
                    self.send_compensate(ctx, parent_node, job.txn, job.version);
                }
            }
            self.finish_without_effects(ctx, job, false);
        }
    }

    /// Acquire locks one by one; park on a wait, retry/doom on a die.
    fn acquire_and_run(&mut self, ctx: &mut Ctx<'_, Msg>, mut parked: Parked) {
        while parked.next < parked.keys.len() {
            let (key, mode) = parked.keys[parked.next];
            let t0 = self.prof_start();
            // lint-allow(wal-hook-coverage): logging is decision-dependent —
            // only a direct Granted outcome touches durable holder state,
            // and that arm writes WalOp::LockAcquire itself; Waiting/Abort
            // outcomes mutate volatile wait-queue state only.
            let decision = self.locks.acquire(key, mode, parked.job.txn);
            self.prof_end(Stage::Lock, t0);
            match decision {
                LockDecision::Granted => {
                    // Logged only on a *direct* grant: promotions out of a
                    // release are reproduced by replaying the release.
                    self.wal(WalOp::LockAcquire {
                        key,
                        txn: parked.job.txn,
                        mode,
                    });
                    parked.next += 1;
                }
                LockDecision::Waiting => {
                    self.stats.parked += 1;
                    self.parked.insert(parked.job.txn, parked);
                    return;
                }
                LockDecision::Abort => {
                    // Locks already held by this transaction (from this
                    // acquisition or earlier subtransactions here) are NOT
                    // released: they may protect applied-but-uncommitted
                    // effects. They fall with the eventual clean-up
                    // (commuting) or NC decision (non-commuting).
                    let job = parked.job;
                    match job.kind {
                        TxnKind::Commuting => {
                            // Nothing applied by THIS subtransaction yet: a
                            // pure local retry preserves exactly-once.
                            self.stats.commuting_retries += 1;
                            let backoff = self.cfg.retry_backoff;
                            self.schedule(ctx, backoff, TimerAction::RetryJob(Box::new(job)));
                        }
                        TxnKind::NonCommuting => {
                            self.doom_nc(ctx, &job);
                        }
                        TxnKind::ReadOnly => {
                            // Reads never acquire locks (§4.2), so the lock
                            // table cannot hand one an abort; degrade by
                            // running it lock-free.
                            self.stats.invariant_breaches += 1;
                            self.execute_job(ctx, job);
                        }
                    }
                    return;
                }
            }
        }
        let job = parked.job;
        self.execute_job(ctx, job);
    }

    pub(super) fn process_grants(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        grants: threev_storage::locks::Grants,
    ) {
        for (txn, key, mode) in grants {
            if let Some(mut parked) = self.parked.remove(&txn) {
                debug_assert_eq!(parked.keys[parked.next].0, key);
                // A promotion is a grant the WAL must see: waiter-queue
                // entries are never logged, so replaying the release alone
                // cannot reproduce it. Replaying this acquire against the
                // recovered table (no waiters) yields the same holder state,
                // including the sole-holder upgrade case.
                self.wal(WalOp::LockAcquire { key, txn, mode });
                parked.next += 1;
                self.acquire_and_run(ctx, parked);
            }
            // Grants for non-parked transactions are re-entrant no-ops.
        }
    }

    /// A locally-doomed NC subtransaction: record the doom; the global
    /// abort happens through the 2PC vote. The subtransaction "terminates"
    /// without effects and without spawning children.
    fn doom_nc(&mut self, ctx: &mut Ctx<'_, Msg>, job: &Job) {
        let local = self.nc_local.entry(job.txn).or_default();
        local.doomed = true;
        local.pending_completions.push((job.version, job.source));
        self.finish_without_effects(ctx, job, false);
    }

    /// Fault-injected abort of a commuting subtransaction (§3.2): no local
    /// effects, compensate the rest of the tree through the parent.
    fn abort_subtxn(&mut self, ctx: &mut Ctx<'_, Msg>, job: &Job) {
        ctx.trace(|| format!("subtx of {} aborts; compensation begins", job.txn));
        self.tombstones.insert(job.txn);
        self.stats.tombstones += 1;
        self.wal(WalOp::IncCompletion {
            version: job.version,
            from: job.source,
        });
        self.counters.inc_completion(job.version, job.source);
        // The aborting node resolves the transaction for itself: any pin
        // taken when this subtransaction was re-rooted is released here
        // (the flood it starts below releases the others).
        self.release_xp_pins(job.txn);
        if let Some((parent_node, _)) = job.parent {
            self.send_compensate(ctx, parent_node, job.txn, job.version);
        }
        self.finish_without_effects(ctx, job, true);
    }

    /// Release every gauge pin held for `txn`: one completion increment at
    /// the gauge per pinned request, which re-balances the `(node, gauge)`
    /// pair and lets the pinned version drain. Idempotent — the map entry
    /// is removed, so whichever resolution signal arrives second (e.g. a
    /// compensation forwarded along two tree edges) is a no-op.
    pub(super) fn release_xp_pins(&mut self, txn: TxnId) {
        if let Some(pins) = self.xp_pins.remove(&txn) {
            for (version, peer) in pins {
                let g = threev_model::gauge_node(peer);
                self.wal(WalOp::IncCompletion { version, from: g });
                self.counters.inc_completion(version, g);
            }
        }
    }

    /// Record one gauge pin for `txn` toward `peer`: an `R` increment at
    /// the gauge id that stays un-matched until the transaction resolves.
    fn pin_xp(&mut self, txn: TxnId, version: VersionNo, peer: threev_model::PartitionId) {
        let g = threev_model::gauge_node(peer);
        self.wal(WalOp::IncRequest { version, to: g });
        // lint-allow(counter-balance): the pin is *deliberately* left open
        // here; its matching C moves in release_xp_pins when the tree
        // resolves (XpResolve) or the compensation flood lands.
        self.counters.inc_request(version, g);
        self.xp_pins.entry(txn).or_default().push((version, peer));
    }

    /// Send a compensating subtransaction to `to`. Partition-local sends
    /// are counted (`R` here, `C` at the receiver) exactly like ordinary
    /// subtransactions; a cross-partition send is uncounted — the two
    /// sides run different version spaces, and the receiver's own gauge
    /// pin is what keeps its footprint alive until the flood lands.
    fn send_compensate(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        to: NodeId,
        txn: TxnId,
        version: VersionNo,
    ) {
        if self.cfg.topology.same_partition(to, self.me) {
            self.wal(WalOp::IncRequest { version, to });
            self.counters.inc_request(version, to);
        }
        ctx.send_tagged(to, Msg::Compensate { txn, version }, "compensate");
    }

    /// Close out a subtransaction that executed no steps and spawned no
    /// children (tombstoned, doomed, or fault-aborted). `already_counted`
    /// is true when the caller has handled the completion counter.
    fn finish_without_effects(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        job: &Job,
        _already_counted: bool,
    ) {
        let sub_id = self.new_sub_id();
        self.trackers.insert(
            sub_id,
            SubTracker {
                txn: job.txn,
                kind: job.kind,
                version: job.version,
                parent: job.parent,
                client: job.client,
                pending_children: 0,
                participants: BTreeSet::new(),
                clean: false,
            },
        );
        self.finish_subtree(ctx, sub_id);
    }

    /// Classify a job for the striped-execution stats: does every local
    /// step land in one store stripe? Pure observation — stripe routing is
    /// per-key inside the store, so correctness never depends on this —
    /// but the share of stripe-local jobs is the parallelism headroom a
    /// multi-core delivery layer could exploit, and `BENCH_hotpath.json`
    /// reports it.
    fn classify_stripes(&mut self, job: &Job) {
        if self.store.n_stripes() <= 1 {
            return;
        }
        let mut first: Option<usize> = None;
        let mut spanning = false;
        for step in &job.plan.steps {
            let s = self.store.stripe_of_key(step.key());
            match first {
                None => first = Some(s),
                Some(f) if f != s => {
                    spanning = true;
                    break;
                }
                Some(_) => {}
            }
        }
        if spanning {
            self.stats.stripe_spanning_jobs += 1;
        } else {
            self.stats.stripe_local_jobs += 1;
        }
    }

    /// Execute the local steps, spawn children, and complete — §4.1 steps
    /// 3–6 (well-behaved), §4.2 (queries), §5 steps 3–5 (non-commuting).
    fn execute_job(&mut self, ctx: &mut Ctx<'_, Msg>, mut job: Job) {
        self.stats.subtxns_executed += 1;
        self.classify_stripes(&job);
        let mut reads: Vec<ReadObservation> = Vec::new();
        let mut clean = true;

        match job.kind {
            TxnKind::ReadOnly | TxnKind::Commuting => {
                for step in &job.plan.steps {
                    match step {
                        OpStep::Read(key) => {
                            // Validated by the pre-pass; a failure here is a
                            // store defect. Skip the step and report unclean.
                            let t0 = self.prof_start();
                            let read = self.store.read_visible(*key, job.version);
                            self.prof_end(Stage::Store, t0);
                            let Ok((ver, value)) = read else {
                                self.stats.invariant_breaches += 1;
                                clean = false;
                                continue;
                            };
                            if ctx.tracing() {
                                ctx.trace(|| format!("{} reads {key} version {ver}", job.txn));
                            }
                            reads.push(ReadObservation {
                                key: *key,
                                version: Some(ver),
                                value,
                            });
                        }
                        OpStep::Update(key, op) => {
                            self.wal(WalOp::Update {
                                key: *key,
                                version: job.version,
                                op: *op,
                                txn: job.txn,
                            });
                            let t0 = self.prof_start();
                            let upd = self.store.update(*key, job.version, *op, job.txn, None);
                            self.prof_end(Stage::Store, t0);
                            let Ok(out) = upd else {
                                self.stats.invariant_breaches += 1;
                                clean = false;
                                continue;
                            };
                            if ctx.tracing() {
                                let n = out.versions_written;
                                ctx.trace(|| {
                                    format!(
                                        "{} updates {key} version {}{}",
                                        job.txn,
                                        job.version,
                                        if n > 1 { " (and newer copies)" } else { "" }
                                    )
                                });
                            }
                            // Record the inverse for potential compensation.
                            let fp = self.footprints.entry(job.txn).or_default();
                            fp.version = job.version;
                            fp.inverse_steps.push((*key, op.compensation(None)));
                        }
                    }
                }
            }
            TxnKind::NonCommuting => {
                // A sibling subtransaction may already have doomed this
                // transaction locally; terminate without effects.
                if self.nc_local.get(&job.txn).is_some_and(|l| l.doomed) {
                    self.doom_nc(ctx, &job);
                    return;
                }
                // §5 step 4: abort if any accessed item already exists in a
                // version above V(K); otherwise update x(V(K)) only.
                let mut doomed = false;
                let t0 = self.prof_start();
                for step in &job.plan.steps {
                    // Validated keys exist; an error here is a store defect —
                    // doom conservatively rather than panic.
                    let newer = match self.store.exists_above(step.key(), job.version) {
                        Ok(b) => b,
                        Err(_) => {
                            self.stats.invariant_breaches += 1;
                            true
                        }
                    };
                    if newer {
                        doomed = true;
                        break;
                    }
                }
                self.prof_end(Stage::Store, t0);
                if doomed {
                    self.stats.nc_stale_aborts += 1;
                    self.doom_nc(ctx, &job);
                    return;
                }
                // Split borrow: take the undo log out while touching the store.
                let mut local = self.nc_local.remove(&job.txn).unwrap_or_default();
                for step in &job.plan.steps {
                    match step {
                        OpStep::Read(key) => {
                            let t0 = self.prof_start();
                            let read = self.store.read_visible(*key, job.version);
                            self.prof_end(Stage::Store, t0);
                            let Ok((ver, value)) = read else {
                                // Post-validation failure: doom the NC
                                // transaction so 2PC aborts it globally.
                                self.stats.invariant_breaches += 1;
                                local.doomed = true;
                                continue;
                            };
                            reads.push(ReadObservation {
                                key: *key,
                                version: Some(ver),
                                value,
                            });
                        }
                        OpStep::Update(key, op) => {
                            self.wal(WalOp::Update {
                                key: *key,
                                version: job.version,
                                op: *op,
                                txn: job.txn,
                            });
                            let t0 = self.prof_start();
                            let upd = self.store.update(
                                *key,
                                job.version,
                                *op,
                                job.txn,
                                Some(&mut local.undo),
                            );
                            self.prof_end(Stage::Store, t0);
                            if upd.is_err() {
                                // Undo already holds the priors of anything
                                // applied so far; dooming lets the 2PC abort
                                // roll the partial effects back.
                                self.stats.invariant_breaches += 1;
                                local.doomed = true;
                            }
                        }
                    }
                }
                local.pending_completions.push((job.version, job.source));
                self.nc_local.insert(job.txn, local);
                clean = true;
            }
        }

        // Maintain the compensation footprint's neighbour set.
        if job.kind == TxnKind::Commuting {
            let fp = self.footprints.entry(job.txn).or_default();
            fp.version = job.version;
            if let Some((parent_node, _)) = job.parent {
                if parent_node != self.me {
                    fp.neighbors.insert(parent_node);
                }
            } else {
                fp.is_root = true;
                fp.client = Some(job.client);
            }
            for child in &job.plan.children {
                if child.node != self.me {
                    fp.neighbors.insert(child.node);
                }
            }
        }

        // §4.1 step 5: increment R, then send, then commit locally. The
        // child plans are *moved* out of the job into their `Subtxn`
        // messages — the parent never reads them again, and cloning a
        // child here would deep-copy its entire subtree (every step and
        // descendant plan) per fan-out, the single biggest allocation on
        // the hot path before this was measured.
        let sub_id = self.new_sub_id();
        let children = std::mem::take(&mut job.plan.children);
        let n_children = children.len() as u32;
        for child in children {
            if self.cfg.topology.same_partition(child.node, self.me) {
                self.wal(WalOp::IncRequest {
                    version: job.version,
                    to: child.node,
                });
                let t0 = self.prof_start();
                self.counters.inc_request(job.version, child.node);
                self.prof_end(Stage::Counter, t0);
                if ctx.tracing() {
                    let r = self.counters.request(job.version, child.node);
                    let (me, v, to) = (self.me, job.version, child.node);
                    ctx.trace(|| {
                        format!("subtx of {} issued to {to}; R{v} {me}->{to} = {r}", job.txn)
                    });
                }
            } else {
                match job.kind {
                    // The child re-roots at the peer's own update version;
                    // what this node tracks is a gauge pin toward the peer,
                    // held until the whole tree resolves (so a late
                    // cross-partition compensate always finds footprints).
                    TxnKind::Commuting => {
                        let peer = self.cfg.topology.partition_of(child.node);
                        self.pin_xp(job.txn, job.version, peer);
                    }
                    // A foreign read re-roots at the peer's read version
                    // and protects itself with the peer's own counters;
                    // nothing here needs to stay open for it.
                    TxnKind::ReadOnly => {}
                    // The shard router never routes a non-commuting tree
                    // across partitions; reaching here is a routing defect.
                    TxnKind::NonCommuting => {
                        self.stats.invariant_breaches += 1;
                    }
                }
            }
            ctx.send_tagged(
                child.node,
                Msg::Subtxn {
                    txn: job.txn,
                    kind: job.kind,
                    version: job.version,
                    plan: child,
                    parent_sub: sub_id,
                    client: job.client,
                    fail_node: job.fail_node,
                },
                "subtxn",
            );
        }

        // §4.1 step 6: completion counter + terminate, one atomic step —
        // except NC subtransactions, whose counter moves with the 2PC
        // decision (§5 step 6).
        if job.kind != TxnKind::NonCommuting {
            self.wal(WalOp::IncCompletion {
                version: job.version,
                from: job.source,
            });
            let t0 = self.prof_start();
            self.counters.inc_completion(job.version, job.source);
            self.prof_end(Stage::Counter, t0);
            if ctx.tracing() {
                let c = self.counters.completion(job.version, job.source);
                let (me, v, src) = (self.me, job.version, job.source);
                ctx.trace(|| format!("subtx of {} completes; C{v} {src}->{me} = {c}", job.txn));
            }
        }

        if !reads.is_empty() {
            ctx.send_tagged(
                job.client,
                Msg::ReadResults {
                    txn: job.txn,
                    reads,
                },
                "client",
            );
        }

        self.trackers.insert(
            sub_id,
            SubTracker {
                txn: job.txn,
                kind: job.kind,
                version: job.version,
                parent: job.parent,
                client: job.client,
                pending_children: n_children,
                participants: BTreeSet::new(),
                clean,
            },
        );
        if n_children == 0 {
            self.finish_subtree(ctx, sub_id);
        }
    }

    /// The subtree rooted at `sub_id` has fully terminated: notify the
    /// parent, or — at the root — close out the transaction.
    fn finish_subtree(&mut self, ctx: &mut Ctx<'_, Msg>, sub_id: SubtxnId) {
        let Some(mut tracker) = self.trackers.remove(&sub_id) else {
            // Callers hold a live tracker; a miss means a duplicate
            // completion slipped through. Drop it rather than panic.
            self.stats.invariant_breaches += 1;
            return;
        };
        let mut participants = std::mem::take(&mut tracker.participants);
        participants.insert(self.me);
        match tracker.parent {
            Some((parent_node, parent_sub)) => {
                ctx.send_tagged(
                    parent_node,
                    Msg::SubtreeDone {
                        txn: tracker.txn,
                        parent_sub,
                        participants: participants.into_iter().collect(),
                        clean: tracker.clean,
                    },
                    "notice",
                );
            }
            None => self.tree_complete(ctx, tracker, participants),
        }
    }

    /// Whole-tree completion at the root node.
    fn tree_complete(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        tracker: SubTracker,
        participants: BTreeSet<NodeId>,
    ) {
        ctx.trace(|| format!("{} is complete", tracker.txn));
        match tracker.kind {
            TxnKind::ReadOnly => {
                // `clean` is false only on the rejection/degradation paths;
                // an ordinary read tree always reports committed.
                ctx.send_tagged(
                    tracker.client,
                    Msg::TxnDone {
                        txn: tracker.txn,
                        version: tracker.version,
                        committed: tracker.clean,
                    },
                    "client",
                );
            }
            TxnKind::Commuting => {
                // Compensation may race the completion chain: a transaction
                // tombstoned or compensated anywhere reports aborted.
                let aborted = !tracker.clean
                    || self.tombstones.contains(&tracker.txn)
                    || self
                        .footprints
                        .get(&tracker.txn)
                        .is_some_and(|f| f.compensated);
                ctx.send_tagged(
                    tracker.client,
                    Msg::TxnDone {
                        txn: tracker.txn,
                        version: tracker.version,
                        committed: !aborted,
                    },
                    "client",
                );
                // §5 clean-up phase: release commute locks asynchronously.
                if self.cfg.locks_enabled {
                    for p in &participants {
                        ctx.send_tagged(*p, Msg::ReleaseLocks { txn: tracker.txn }, "cleanup");
                    }
                }
                // Cross-partition resolution: a tree that touched another
                // partition left gauge pins at every shipping and entry
                // node. On a clean commit, broadcast the resolve so they
                // release; on abort send nothing — the compensation flood
                // is the release signal there, and sending both would let
                // a resolve overtake an in-flight compensate.
                let topo = self.cfg.topology;
                if !topo.is_single()
                    && !aborted
                    && participants
                        .iter()
                        .any(|p| !topo.same_partition(*p, self.me))
                {
                    for p in participants.iter().filter(|p| **p != self.me) {
                        ctx.send_tagged(*p, Msg::XpResolve { txn: tracker.txn }, "xp");
                    }
                    self.release_xp_pins(tracker.txn);
                }
            }
            TxnKind::NonCommuting => {
                // §5 step 6: two-phase commitment over the participants.
                if tracker.clean {
                    self.nc_coord.insert(
                        tracker.txn,
                        NcCoord {
                            participants: participants.clone(),
                            votes: BTreeMap::new(),
                            version: tracker.version,
                        },
                    );
                    for p in &participants {
                        ctx.send_tagged(*p, Msg::NcPrepare { txn: tracker.txn }, "2pc");
                    }
                } else {
                    // Something doomed the transaction mid-tree: abort
                    // without a voting round.
                    for p in &participants {
                        ctx.send_tagged(
                            *p,
                            Msg::NcDecision {
                                txn: tracker.txn,
                                commit: false,
                            },
                            "2pc",
                        );
                    }
                    self.nc_finished(ctx, tracker.txn, tracker.version, false);
                }
            }
        }
    }

    /// Root-side epilogue of an NC transaction: report or retry.
    fn nc_finished(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        txn: TxnId,
        version: VersionNo,
        committed: bool,
    ) {
        let Some(root_ctx) = self.nc_root_ctx.get(&txn) else {
            return;
        };
        let client = root_ctx.client;
        let retries_left = root_ctx.retries_left;
        if committed {
            self.nc_root_ctx.remove(&txn);
            ctx.send_tagged(
                client,
                Msg::TxnDone {
                    txn,
                    version,
                    committed: true,
                },
                "client",
            );
        } else if retries_left > 0 {
            if let Some(c) = self.nc_root_ctx.get_mut(&txn) {
                c.retries_left -= 1;
            }
            let backoff = self.cfg.retry_backoff;
            self.schedule(ctx, backoff, TimerAction::RetryNcRoot(txn));
        } else {
            self.stats.nc_gave_up += 1;
            self.nc_root_ctx.remove(&txn);
            ctx.send_tagged(
                client,
                Msg::TxnDone {
                    txn,
                    version,
                    committed: false,
                },
                "client",
            );
        }
    }

    /// (Re)submit an NC root: §5 steps 1–2, the `vu == vr + 1` gate.
    pub(super) fn submit_nc_root(&mut self, ctx: &mut Ctx<'_, Msg>, txn: TxnId) {
        let Some(root) = self.nc_root_ctx.get(&txn) else {
            // Retry timer outlived the transaction (a duplicate decision
            // already closed it): nothing to resubmit.
            return;
        };
        let job = Job {
            txn,
            kind: TxnKind::NonCommuting,
            version: self.vu,
            plan: root.plan.clone(),
            parent: None,
            client: root.client,
            fail_node: root.fail_node,
            source: self.me,
        };
        // Root request counter moves at arrival (§4.1 step 1 applies to NC
        // roots too — their activity must hold version `vu` open).
        self.wal(WalOp::IncRequest {
            version: job.version,
            to: self.me,
        });
        self.counters.inc_request(job.version, self.me);
        if job.version == self.vr.next() {
            self.run_job(ctx, job);
        } else {
            self.stats.nc_gated += 1;
            ctx.trace(|| format!("{txn} waits at gate (vu != vr+1)"));
            self.nc_waiting.push(job);
        }
    }

    // ------------------------------------------------------ msg handlers

    pub(super) fn handle_submit(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        txn: TxnId,
        kind: TxnKind,
        plan: SubtxnPlan,
        client: NodeId,
        fail_node: Option<NodeId>,
    ) {
        self.stats.roots += 1;
        match kind {
            TxnKind::ReadOnly => {
                let version = self.vr;
                self.wal(WalOp::IncRequest {
                    version,
                    to: self.me,
                });
                let t0 = self.prof_start();
                self.counters.inc_request(version, self.me);
                self.prof_end(Stage::Counter, t0);
                if ctx.tracing() {
                    ctx.trace(|| format!("read tx {txn} arrives (version {version})"));
                }
                self.run_job(
                    ctx,
                    Job {
                        txn,
                        kind,
                        version,
                        plan,
                        parent: None,
                        client,
                        fail_node,
                        source: self.me,
                    },
                );
            }
            TxnKind::Commuting => {
                let version = self.vu;
                self.wal(WalOp::IncRequest {
                    version,
                    to: self.me,
                });
                let t0 = self.prof_start();
                self.counters.inc_request(version, self.me);
                self.prof_end(Stage::Counter, t0);
                if ctx.tracing() {
                    ctx.trace(|| format!("update tx {txn} arrives (version {version})"));
                }
                self.run_job(
                    ctx,
                    Job {
                        txn,
                        kind,
                        version,
                        plan,
                        parent: None,
                        client,
                        fail_node,
                        source: self.me,
                    },
                );
            }
            TxnKind::NonCommuting => {
                self.nc_root_ctx.insert(
                    txn,
                    NcRootCtx {
                        plan,
                        client,
                        fail_node,
                        retries_left: self.cfg.nc_max_retries,
                    },
                );
                self.submit_nc_root(ctx, txn);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn handle_subtxn(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: TxnId,
        kind: TxnKind,
        version: VersionNo,
        plan: SubtxnPlan,
        parent_sub: SubtxnId,
        client: NodeId,
        fail_node: Option<NodeId>,
    ) {
        if ctx.tracing() {
            ctx.trace(|| format!("subtx of {txn} arrives from {from} (version {version})"));
        }
        if !self.cfg.topology.same_partition(from, self.me) {
            // A foreign sender's version belongs to another partition's
            // version space: neither run at it nor infer advancement from
            // it. Re-root the subtree here instead.
            self.handle_foreign_subtxn(ctx, from, txn, kind, plan, parent_sub, client, fail_node);
            return;
        }
        // §2.3: an update descendant with a newer version acts as the
        // advancement notification.
        if kind != TxnKind::ReadOnly && version > self.vu {
            self.advance_vu(ctx, version, true);
        }
        self.run_job(
            ctx,
            Job {
                txn,
                kind,
                version,
                plan,
                parent: Some((from, parent_sub)),
                client,
                fail_node,
                source: from,
            },
        );
    }

    /// Re-root a subtransaction arriving from another partition: this node
    /// becomes the subtree's root within its own partition. The version is
    /// assigned locally (update version for commuting work, read version
    /// for queries — exactly as [`Self::handle_submit`] would), the
    /// counters mirror a root's (`R`/`C` at this node), and commuting work
    /// additionally takes a gauge pin toward the sender's partition so the
    /// assigned version stays open until the whole tree resolves. The
    /// parent link is kept verbatim: the completion notice still travels
    /// back across the partition boundary.
    #[allow(clippy::too_many_arguments)]
    fn handle_foreign_subtxn(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: TxnId,
        kind: TxnKind,
        plan: SubtxnPlan,
        parent_sub: SubtxnId,
        client: NodeId,
        fail_node: Option<NodeId>,
    ) {
        let version = match kind {
            TxnKind::ReadOnly => self.vr,
            TxnKind::Commuting => self.vu,
            TxnKind::NonCommuting => {
                // The shard router forbids cross-partition non-commuting
                // trees (their 2PC and gate are partition-local notions).
                self.stats.invariant_breaches += 1;
                return;
            }
        };
        if ctx.tracing() {
            ctx.trace(|| format!("subtx of {txn} re-roots at local version {version}"));
        }
        self.wal(WalOp::IncRequest {
            version,
            to: self.me,
        });
        self.counters.inc_request(version, self.me);
        if kind == TxnKind::Commuting {
            let peer = self.cfg.topology.partition_of(from);
            self.pin_xp(txn, version, peer);
        }
        self.run_job(
            ctx,
            Job {
                txn,
                kind,
                version,
                plan,
                parent: Some((from, parent_sub)),
                client,
                fail_node,
                source: self.me,
            },
        );
    }

    pub(super) fn handle_subtree_done(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: TxnId,
        parent_sub: SubtxnId,
        participants: Vec<NodeId>,
        clean: bool,
    ) {
        if ctx.tracing() {
            ctx.trace(|| format!("completion notice for subtx of {txn} arrives from {from}"));
        }
        let Some(tracker) = self.trackers.get_mut(&parent_sub) else {
            // Tracker already closed (e.g. duplicate notice) — ignore.
            return;
        };
        tracker.participants.extend(participants);
        tracker.clean &= clean;
        tracker.pending_children = tracker.pending_children.saturating_sub(1);
        if tracker.pending_children == 0 {
            self.finish_subtree(ctx, parent_sub);
        }
    }

    // -------------------------------------------------------------- NC3V

    pub(super) fn handle_nc_prepare(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, txn: TxnId) {
        let yes = self.nc_local.get(&txn).map(|l| !l.doomed).unwrap_or(true);
        ctx.send_tagged(
            from,
            Msg::NcVote {
                txn,
                node: self.me,
                yes,
            },
            "2pc",
        );
    }

    pub(super) fn handle_nc_vote(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        txn: TxnId,
        node: NodeId,
        yes: bool,
    ) {
        let Some(coord) = self.nc_coord.get_mut(&txn) else {
            return;
        };
        coord.votes.insert(node, yes);
        if coord.votes.len() == coord.participants.len() {
            let commit = coord.votes.values().all(|v| *v);
            if let Some(coord) = self.nc_coord.remove(&txn) {
                for p in &coord.participants {
                    ctx.send_tagged(*p, Msg::NcDecision { txn, commit }, "2pc");
                }
                self.nc_finished(ctx, txn, coord.version, commit);
            }
        }
    }

    pub(super) fn handle_nc_decision(&mut self, ctx: &mut Ctx<'_, Msg>, txn: TxnId, commit: bool) {
        let Some(mut local) = self.nc_local.remove(&txn) else {
            return;
        };
        if local.decided {
            return;
        }
        local.decided = true;
        if commit {
            self.stats.nc_commits += 1;
        } else {
            self.stats.nc_rollbacks += 1;
            let undo = std::mem::take(&mut local.undo);
            if self.wal_enabled() {
                // Restore records go out in the order the store will apply
                // them (reverse of the undo log), so replay is a verbatim
                // re-application.
                for (key, version, prior) in undo.entries().iter().rev() {
                    self.wal(WalOp::Restore {
                        key: *key,
                        version: *version,
                        prior: prior.clone(),
                    });
                }
            }
            let t0 = self.prof_start();
            self.store.rollback(undo);
            self.prof_end(Stage::Store, t0);
        }
        // §5 step 6: completion counters move atomically with the decision.
        for (version, source) in local.pending_completions.drain(..) {
            self.wal(WalOp::IncCompletion {
                version,
                from: source,
            });
            self.counters.inc_completion(version, source);
        }
        if self.cfg.locks_enabled {
            self.wal(WalOp::LockRelease { txn });
            let t0 = self.prof_start();
            let grants = self.locks.release_all(txn);
            self.prof_end(Stage::Lock, t0);
            self.process_grants(ctx, grants);
        }
    }

    pub(super) fn handle_release_locks(&mut self, ctx: &mut Ctx<'_, Msg>, txn: TxnId) {
        if self.cfg.locks_enabled {
            self.wal(WalOp::LockRelease { txn });
            let t0 = self.prof_start();
            let grants = self.locks.release_all(txn);
            self.prof_end(Stage::Lock, t0);
            self.process_grants(ctx, grants);
        }
        // Footprints are kept: a compensating subtransaction may still be in
        // flight (the completion chain and compensation race). They are
        // garbage-collected by version in `handle_gc`.
    }
}
