//! The per-node 3V engine.
//!
//! Implements, for one database node:
//!
//! * §4.1 — execution of well-behaved update subtransactions: version
//!   assignment at the root, version inference from arriving descendants,
//!   copy-on-update, the update-all-≥`V(T)` rule, request/completion counter
//!   maintenance;
//! * §4.2 — read-only queries (no locks, never delayed, never aborted);
//! * §4.3 — the node side of version advancement: update/read version
//!   switches, atomic counter snapshots, garbage collection;
//! * §3.2 — compensation: tree-structured compensating subtransactions with
//!   per-node deduplication and tombstones for the "compensate before the
//!   original arrives" race;
//! * §5 — NC3V: the `vu == vr + 1` gate for non-commuting roots, exclusive
//!   locks with wait-die, the stale-version abort rule, and two-phase
//!   commit with completion counters incremented atomically with the
//!   decision.
//!
//! The engine is a sans-io state machine: all effects flow through the
//! [`Ctx`] handle, so the same code runs under the discrete-event simulator
//! and the real-thread runtime.
//!
//! This module is the thin shell: configuration, statistics, the engine
//! state, and the [`Actor`] dispatch. The protocol logic lives in the
//! submodules — [`exec`](self) (subtransaction execution, locking,
//! completion tracking, NC3V), `version_state` (version switches and
//! counter snapshots), and `gc` (compensation, tombstones, garbage
//! collection).
//!
//! **Local concurrency control.** The paper assumes a local scheme that
//! serializes subtransactions on each node. Here a node processes one
//! message at a time — whether delivered singly or as a batch — so
//! subtransaction *steps* are trivially atomic; the lock table (active only
//! when non-commuting transactions are admitted) adds two-phase locking
//! across messages, exactly as §5 prescribes.

mod exec;
mod gc;
pub mod profile;
mod version_state;

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use threev_durability::{
    Durability, DurabilityStats, FileBackend, MemBackend as MemLogBackend, Snapshot, WalOp,
};
use threev_model::{
    Key, NodeId, PartitionId, Schema, SubtxnId, SubtxnPlan, Topology, TxnId, TxnKind, UpdateOp,
    VersionNo,
};
use threev_sim::{Actor, Ctx, SimDuration};
use threev_storage::{LockMode, Store, StoreStats, StripedLocks, StripedStore, UndoLog};
// Re-exported so downstream crates (shard, runtime, binaries) can select a
// backend without depending on threev-storage directly.
pub use threev_storage::BackendConfig;

use crate::counters::CounterTable;
use crate::msg::Msg;
use profile::ProfState;
pub use profile::{ClockFn, ProfileMode, Stage, StageBreakdown, N_STAGES, STAGES};

/// How (and whether) a node persists its protocol state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum DurabilityMode {
    /// No WAL, no checkpoints. A crashed node cannot recover its state —
    /// crash injection treats it as a silent outage. This is the default
    /// and leaves the execution path byte-identical to the pre-durability
    /// engine.
    #[default]
    None,
    /// WAL and checkpoints in memory. The log survives a *simulated* crash
    /// (the [`Durability`] handle outlives the volatile state) but not the
    /// process — the deterministic-simulation mode.
    Memory {
        /// Checkpoint after this many log records (0 = never).
        checkpoint_every: usize,
    },
    /// WAL and checkpoints on disk under `dir/node-<id>/` — the real-thread
    /// runtime mode. Survives process restarts.
    File {
        /// Base directory; each node appends its own `node-<id>` subdir.
        dir: PathBuf,
        /// Checkpoint after this many log records (0 = never).
        checkpoint_every: usize,
    },
}

/// Per-node protocol configuration (shared by all nodes of a cluster).
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Enable the NC3V lock table. When `false` (pure 3V), well-behaved
    /// transactions take no locks at all.
    pub locks_enabled: bool,
    /// Backoff before retrying a commuting subtransaction that lost a
    /// wait-die race (only possible when `locks_enabled`).
    pub retry_backoff: SimDuration,
    /// How many times a non-commuting transaction is retried after a global
    /// abort before the failure is reported to the client.
    pub nc_max_retries: u32,
    /// Write-ahead logging and checkpointing policy.
    pub durability: DurabilityMode,
    /// Where the version chains live: in-memory (default, bit-identical to
    /// the pre-trait store) or the on-disk paged engine with incremental
    /// checkpoints. Each node opens `store-node-<id>` under the configured
    /// directory.
    pub backend: BackendConfig,
    /// Cluster partition layout. The default [`Topology::single`] maps
    /// every id to one partition and leaves all single-cluster code paths
    /// untouched; a sharded cluster sets the real layout so nodes can
    /// recognise foreign senders, re-root their subtransactions, and keep
    /// gauge-keyed counter rows per peer partition.
    pub topology: Topology,
    /// Intra-node key stripes for the store and lock table (ROADMAP
    /// item 3). `1` (the default) is the classic unsharded engine,
    /// bit-identical to before the stripe layer existed; `N > 1` splits
    /// the version chains and lock states into N independent stripes by a
    /// fixed key hash — exact-equivalent by the paper's disjoint-key
    /// commutativity argument (see `threev_storage::stripe`), pinned by
    /// `tests/stripe_equivalence.rs`.
    pub stripes: u16,
    /// Hot-path stage profiling (see [`profile`]). Off by default and
    /// observationally free when on.
    pub profile: ProfileMode,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            locks_enabled: false,
            retry_backoff: SimDuration::from_micros(500),
            nc_max_retries: 20,
            durability: DurabilityMode::None,
            backend: BackendConfig::Mem,
            topology: Topology::single(),
            stripes: 1,
            profile: ProfileMode::Off,
        }
    }
}

/// Observable per-node protocol statistics.
#[derive(Clone, Debug, Default)]
pub struct NodeStats {
    /// Subtransactions executed (including compensating ones).
    pub subtxns_executed: u64,
    /// Root subtransactions that arrived here.
    pub roots: u64,
    /// Compensating subtransactions applied.
    pub compensations_applied: u64,
    /// Tombstones created (compensation overtook the original).
    pub tombstones: u64,
    /// Subtransactions skipped because of a tombstone.
    pub skipped_tombstoned: u64,
    /// Commuting subtransactions retried after a wait-die loss.
    pub commuting_retries: u64,
    /// Subtransactions parked waiting for a lock.
    pub parked: u64,
    /// NC transactions locally doomed by the §5 stale-version abort rule.
    pub nc_stale_aborts: u64,
    /// NC participants that voted yes and committed.
    pub nc_commits: u64,
    /// NC participants rolled back by a global abort.
    pub nc_rollbacks: u64,
    /// NC roots that exhausted their retries.
    pub nc_gave_up: u64,
    /// NC roots that waited at the `vu == vr + 1` gate.
    pub nc_gated: u64,
    /// Batched deliveries received through [`Actor::on_batch`].
    pub batches: u64,
    /// Messages that arrived inside a batch. `batched_msgs / batches` is
    /// the mean batch size this node saw.
    pub batched_msgs: u64,
    /// Subtransactions rejected before execution because a step failed
    /// validation (unknown key, no visible base version, type-mismatched
    /// op). A malformed message terminates its subtree cleanly instead of
    /// panicking the node.
    pub malformed_rejected: u64,
    /// Post-validation internal inconsistencies survived by degrading
    /// (e.g. a store operation failing after its pre-pass succeeded).
    /// Non-zero values indicate an engine defect; tests assert zero.
    pub invariant_breaches: u64,
    /// WAL records written (durability enabled only).
    pub wal_records: u64,
    /// Checkpoints taken (durability enabled only).
    pub checkpoints: u64,
    /// Bytes written to stable storage by checkpoints: the encoded
    /// snapshot, plus (paged backend) the dirty pages and meta the
    /// incremental flush wrote. The storage-bench mem-vs-paged comparison
    /// reads this.
    pub checkpoint_bytes: u64,
    /// Crash recoveries performed.
    pub recoveries: u64,
    /// WAL records replayed across all recoveries.
    pub wal_replayed: u64,
    /// Subtransactions whose step keys all hashed to one store stripe
    /// (the stripe-independent fast class; only counted when the node
    /// runs more than one stripe).
    pub stripe_local_jobs: u64,
    /// Subtransactions touching keys in two or more stripes (these rely
    /// on the single-message-at-a-time ordered path).
    pub stripe_spanning_jobs: u64,
}

/// A unit of runnable work: one subtransaction with its full context.
#[derive(Clone, Debug)]
struct Job {
    txn: TxnId,
    kind: TxnKind,
    version: VersionNo,
    plan: SubtxnPlan,
    /// `(parent node, parent subtransaction)`; `None` for roots.
    parent: Option<(NodeId, SubtxnId)>,
    client: NodeId,
    fail_node: Option<NodeId>,
    /// Node credited in the completion counter (`source(T)` of §4.1).
    source: NodeId,
}

/// Completion-notice bookkeeping for one subtransaction executed here.
#[derive(Debug)]
struct SubTracker {
    txn: TxnId,
    kind: TxnKind,
    version: VersionNo,
    parent: Option<(NodeId, SubtxnId)>,
    client: NodeId,
    pending_children: u32,
    participants: BTreeSet<NodeId>,
    clean: bool,
}

/// What this transaction did on this node — enough to compensate it.
#[derive(Debug, Default)]
struct Footprint {
    version: VersionNo,
    neighbors: BTreeSet<NodeId>,
    inverse_steps: Vec<(Key, UpdateOp)>,
    compensated: bool,
    is_root: bool,
    client: Option<NodeId>,
}

/// Participant-side state of one NC transaction.
#[derive(Debug, Default)]
struct NcLocal {
    undo: UndoLog,
    /// `(version, source)` completion-counter increments owed at decision.
    pending_completions: Vec<(VersionNo, NodeId)>,
    doomed: bool,
    decided: bool,
}

/// Root-side 2PC state of one NC transaction.
#[derive(Debug)]
struct NcCoord {
    participants: BTreeSet<NodeId>,
    votes: BTreeMap<NodeId, bool>,
    version: VersionNo,
}

/// Root-side retry context for NC transactions.
#[derive(Debug)]
struct NcRootCtx {
    plan: SubtxnPlan,
    client: NodeId,
    fail_node: Option<NodeId>,
    retries_left: u32,
}

/// A subtransaction waiting for a lock.
#[derive(Debug)]
struct Parked {
    keys: Vec<(Key, LockMode)>,
    next: usize,
    job: Job,
}

enum TimerAction {
    RetryJob(Box<Job>),
    RetryNcRoot(TxnId),
}

/// A cheap read-only snapshot of one node's protocol state, taken by the
/// model checker (`threev-check`) after every executed event and fed to
/// its invariant oracle. Everything here is a value copy — building a view
/// never perturbs the engine, so checking is schedule-transparent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantView {
    /// The node observed.
    pub node: NodeId,
    /// Current update version `vu`.
    pub vu: VersionNo,
    /// Current read version `vr`.
    pub vr: VersionNo,
    /// Live version-chain length per stored key (P1: never more than 3).
    pub chain_lengths: Vec<(Key, usize)>,
    /// Counter rows per version: `(v, R(v)·q rows, C(v)o· rows)` — the
    /// same export shape as a durability checkpoint, so the oracle can
    /// assemble the global pairwise matrix with [`crate::CounterMatrix`].
    #[allow(clippy::type_complexity)]
    pub counters: Vec<(VersionNo, Vec<(NodeId, u64)>, Vec<(NodeId, u64)>)>,
    /// Exclusive locks currently held: `(key, transaction)`.
    pub exclusive_held: Vec<(Key, threev_model::TxnId)>,
    /// Total queued lock waiters across all keys.
    pub lock_waiters: usize,
    /// [`ThreeVNode::is_quiescent`] at snapshot time.
    pub quiescent: bool,
    /// Is the node down (crashed, recovery not yet run)? A down node's
    /// volatile state is the post-crash wipe, not a protocol state —
    /// checkers must not hold per-node invariants against it, and its
    /// counter tables are absent until recovery replays them.
    pub down: bool,
}

/// The 3V engine for one node.
pub struct ThreeVNode {
    me: NodeId,
    cfg: NodeConfig,
    /// Crashed and not yet recovered (between `on_crash` and `on_restart`).
    down: bool,
    vu: VersionNo,
    vr: VersionNo,
    store: StripedStore,
    counters: CounterTable,
    locks: StripedLocks,
    spawn_seq: u64,
    trackers: BTreeMap<SubtxnId, SubTracker>,
    footprints: BTreeMap<TxnId, Footprint>,
    tombstones: BTreeSet<TxnId>,
    nc_local: BTreeMap<TxnId, NcLocal>,
    nc_coord: BTreeMap<TxnId, NcCoord>,
    nc_root_ctx: BTreeMap<TxnId, NcRootCtx>,
    nc_waiting: Vec<Job>,
    parked: BTreeMap<TxnId, Parked>,
    /// Gauge pins held for unresolved cross-partition transactions: each
    /// entry is an un-matched `R(version, gauge(peer))` increment made when
    /// this node shipped a commuting child to `peer` or re-rooted one
    /// arriving from `peer`. Released (matching `C` increments) when the
    /// transaction resolves — [`Msg::XpResolve`] on clean commit, or the
    /// compensation flood / a local tombstone / a local abort otherwise.
    /// While any pin is live its version cannot drain, so footprints
    /// everywhere in this partition stay compensatable.
    xp_pins: BTreeMap<TxnId, Vec<(VersionNo, PartitionId)>>,
    timers: BTreeMap<u64, TimerAction>,
    next_timer: u64,
    stats: NodeStats,
    /// WAL + checkpoint handle. Survives a crash (it models the disk);
    /// everything else in the struct is volatile.
    dur: Option<Durability>,
    /// Stage profiling state (`None` unless `cfg.profile` is `On`).
    /// Write-only from the engine's perspective: nothing in the protocol
    /// ever reads it, so profiling cannot perturb behaviour.
    prof: Option<Box<ProfState>>,
}

impl ThreeVNode {
    /// Build the node: store initialised from the schema, `vr = 0`,
    /// `vu = 1` (paper §4 initial conditions). With durability enabled an
    /// initial checkpoint is taken immediately, so recovery always has a
    /// base snapshot to start from.
    pub fn new(schema: &Schema, me: NodeId, cfg: NodeConfig) -> Self {
        if cfg.stripes > 1
            && cfg.durability != DurabilityMode::None
            && matches!(cfg.backend, BackendConfig::Paged { .. })
        {
            // lint-allow(panic-hygiene): construction-time config error.
            // Paged WAL replay recovers directly into the single page
            // store; striped paged recovery is not wired yet and failing
            // loudly beats silently dropping stripes.
            panic!("{me}: stripes > 1 with a durable paged backend is unsupported");
        }
        let dur = match &cfg.durability {
            DurabilityMode::None => None,
            DurabilityMode::Memory { checkpoint_every } => Some(Durability::new(
                Box::new(MemLogBackend::new()),
                *checkpoint_every,
            )),
            DurabilityMode::File {
                dir,
                checkpoint_every,
            } => {
                let node_dir = dir.join(format!("node-{}", me.0));
                // lint-allow(panic-hygiene): construction-time config error
                // (unopenable WAL directory), not a protocol message; the
                // process has no node to degrade to yet.
                let backend = FileBackend::open(&node_dir).unwrap_or_else(|e| {
                    panic!("{}: cannot open WAL dir {}: {e}", me, node_dir.display())
                });
                Some(Durability::new(Box::new(backend), *checkpoint_every))
            }
        };
        // lint-allow(panic-hygiene): construction-time config error
        // (unopenable page-store directory), same fail-stop rationale as
        // the WAL directory above.
        let store = StripedStore::from_schema_on_config(&cfg.backend, schema, me, cfg.stripes)
            .unwrap_or_else(|e| panic!("{me}: cannot open storage backend {:?}: {e}", cfg.backend));
        let prof = match cfg.profile {
            ProfileMode::Off => None,
            ProfileMode::On(clock) => Some(Box::new(ProfState::new(clock))),
        };
        let stripes = cfg.stripes;
        let mut node = ThreeVNode {
            me,
            cfg,
            down: false,
            vu: VersionNo(1),
            vr: VersionNo(0),
            store,
            counters: CounterTable::new(),
            locks: StripedLocks::new(stripes),
            spawn_seq: 0,
            trackers: BTreeMap::new(),
            footprints: BTreeMap::new(),
            tombstones: BTreeSet::new(),
            nc_local: BTreeMap::new(),
            nc_coord: BTreeMap::new(),
            nc_root_ctx: BTreeMap::new(),
            nc_waiting: Vec::new(),
            parked: BTreeMap::new(),
            xp_pins: BTreeMap::new(),
            timers: BTreeMap::new(),
            next_timer: 0,
            stats: NodeStats::default(),
            dur,
            prof,
        };
        // A file backend may already hold a previous incarnation's state
        // (process restart): recover it rather than overwrite it.
        if node.dur.as_ref().is_some_and(|d| d.has_snapshot()) {
            node.recover_install();
        } else if node.dur.is_some() {
            node.checkpoint_now();
        }
        node
    }

    /// Current update version `vu`.
    pub fn vu(&self) -> VersionNo {
        self.vu
    }

    /// Current read version `vr`.
    pub fn vr(&self) -> VersionNo {
        self.vr
    }

    /// The node's (possibly striped) store.
    pub fn store(&self) -> &StripedStore {
        &self.store
    }

    /// Storage statistics, merged across stripes.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Protocol statistics.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// Counter table (read access for tests and the Table 1 replay).
    pub fn counters(&self) -> &CounterTable {
        &self.counters
    }

    /// Lock table (read access for invariant checks).
    pub fn locks(&self) -> &StripedLocks {
        &self.locks
    }

    /// Accumulated hot-path stage breakdown, if profiling is on.
    pub fn stage_breakdown(&self) -> Option<&StageBreakdown> {
        self.prof.as_deref().map(|p| &p.breakdown)
    }

    /// Start a profiled span: reads the injected clock iff profiling is
    /// on. Pair with [`ThreeVNode::prof_end`].
    #[inline]
    pub(super) fn prof_start(&self) -> Option<u64> {
        self.prof.as_deref().map(|p| (p.clock)())
    }

    /// Close a profiled span opened by [`ThreeVNode::prof_start`],
    /// attributing the elapsed clock units to `stage`.
    #[inline]
    pub(super) fn prof_end(&mut self, stage: Stage, t0: Option<u64>) {
        if let (Some(t0), Some(p)) = (t0, self.prof.as_deref_mut()) {
            let now = (p.clock)();
            p.breakdown.ns[stage as usize] += now.saturating_sub(t0);
            p.breakdown.calls[stage as usize] += 1;
        }
    }

    /// Durability-layer statistics, if durability is enabled.
    pub fn durability_stats(&self) -> Option<&DurabilityStats> {
        self.dur.as_ref().map(|d| d.stats())
    }

    /// Snapshot this node's state for invariant checking (see
    /// [`InvariantView`]). Read-only and allocation-cheap at model-checking
    /// scales; called by `threev-check` after every executed event.
    pub fn invariant_view(&self) -> InvariantView {
        let chain_lengths: Vec<(Key, usize)> = self
            .store
            .iter_versions()
            .map(|(k, rec)| (k, rec.version_count()))
            .collect();
        let mut exclusive_held = Vec::new();
        let mut lock_waiters = 0usize;
        for (key, holders, waiters) in self.locks.export_parts() {
            lock_waiters += waiters.len();
            for (txn, mode, _count) in holders {
                if mode == LockMode::Exclusive {
                    exclusive_held.push((key, txn));
                }
            }
        }
        InvariantView {
            node: self.me,
            vu: self.vu,
            vr: self.vr,
            chain_lengths,
            counters: self.counters.to_parts(),
            exclusive_held,
            lock_waiters,
            quiescent: self.is_quiescent(),
            down: self.down,
        }
    }

    /// Is the node quiescent (no trackers, parked work, NC state, or
    /// unresolved cross-partition pins)?
    pub fn is_quiescent(&self) -> bool {
        self.trackers.is_empty()
            && self.parked.is_empty()
            && self.nc_local.is_empty()
            && self.nc_coord.is_empty()
            && self.nc_waiting.is_empty()
            && self.xp_pins.is_empty()
            && self.locks.is_idle()
    }

    /// Gauge pins currently held for unresolved cross-partition
    /// transactions (observability/tests).
    pub fn xp_pins_held(&self) -> usize {
        self.xp_pins.values().map(Vec::len).sum()
    }

    // --------------------------------------------------------- durability

    /// Append one record to the WAL (no-op without durability). Mutation
    /// sites call this *before* applying the change, so the log is always
    /// at least as new as the volatile state (write-ahead rule).
    #[inline]
    pub(super) fn wal(&mut self, op: WalOp) {
        if self.dur.is_some() {
            let t0 = self.prof_start();
            if let Some(d) = self.dur.as_mut() {
                d.log(op);
                self.stats.wal_records += 1;
            }
            self.prof_end(Stage::Wal, t0);
        }
    }

    /// Is WAL logging active? Lets callers skip building expensive records
    /// (e.g. cloning restore values) when durability is off.
    #[inline]
    pub(super) fn wal_enabled(&self) -> bool {
        self.dur.is_some()
    }

    /// Serialize the durable protocol state: the version chains, the lock
    /// table, the counter tables, and `(vr, vu)`. Volatile bookkeeping
    /// (trackers, footprints, tombstones, NC contexts, parked work) is
    /// deliberately excluded — see DESIGN.md "Durability & recovery".
    fn snapshot_now(&self) -> Snapshot {
        // Lock waiters are volatile: the parked jobs that would consume
        // their grants die with the crash, and a restored waiter would
        // also double-promote against the WAL's promotion records. Only
        // holders are durable.
        let mut locks = self.locks.export_parts();
        for row in &mut locks {
            row.2.clear();
        }
        // Paged backends persist the chains natively; the snapshot only
        // carries control state and a flag telling recovery to look at the
        // page files instead of an embedded store image.
        let external = self.store.persists_chains();
        Snapshot {
            node: self.me,
            lsn: 0, // stamped by Durability::checkpoint
            vu: self.vu,
            vr: self.vr,
            external_store: external,
            store: if external {
                Vec::new()
            } else {
                self.store.export_parts()
            },
            counters: self.counters.to_parts(),
            locks,
        }
    }

    /// Take a checkpoint unconditionally (durability enabled only). With a
    /// paged backend this is *incremental*: only dirty records are flushed
    /// to the page files, and the snapshot itself shrinks to control state.
    fn checkpoint_now(&mut self) {
        let snap = self.snapshot_now();
        let Some(d) = self.dur.as_mut() else {
            return;
        };
        let mut bytes = 0u64;
        if self.store.persists_chains() {
            // Flush dirty chains at the WAL's current LSN *before*
            // publishing the snapshot: recovery replays store ops strictly
            // above the page files' durable LSN, so the files must never
            // claim an LSN newer than what they contain. Page-file I/O
            // failure here is fail-stop inside the backend (see DESIGN.md
            // "Storage backends").
            bytes += self.store.flush_dirty(d.lsn());
        }
        bytes += d.checkpoint(snap) as u64;
        d.sync();
        self.stats.checkpoints += 1;
        self.stats.checkpoint_bytes += bytes;
    }

    /// Checkpoint if the log has grown past the configured interval.
    /// Called after every delivery, so the log length seen by a crash is
    /// bounded by `checkpoint_every` plus one delivery's worth of records.
    fn maybe_checkpoint(&mut self) {
        if self.dur.as_ref().is_some_and(|d| d.should_checkpoint()) {
            self.checkpoint_now();
        }
    }

    /// Drop all volatile state, as a crash would. The [`Durability`]
    /// handle survives — it models the disk. Without durability this is a
    /// no-op: losing the store with no way back would turn a transient
    /// outage into data loss, so crash injection on a durability-less node
    /// silences it (the transport already drops its traffic) but leaves
    /// its memory intact.
    pub fn crash_volatile(&mut self) {
        if self.dur.is_none() {
            return;
        }
        // lint-allow(wal-hook-coverage): this *is* the crash — it models
        // losing the volatile state the WAL protects, so logging it would
        // be circular. The placeholder is an empty mem store even under a
        // paged config: the page files survive on disk and recovery
        // reopens them.
        self.store = StripedStore::empty_mem(self.me);
        self.counters = CounterTable::new();
        self.locks = StripedLocks::new(1);
        self.vu = VersionNo(1);
        self.vr = VersionNo(0);
        self.trackers.clear();
        self.footprints.clear();
        self.tombstones.clear();
        self.nc_local.clear();
        self.nc_coord.clear();
        self.nc_root_ctx.clear();
        self.nc_waiting.clear();
        self.parked.clear();
        // Pins are volatile: their txn→(version, peer) mapping is not in
        // the WAL, so a recovered node cannot re-associate a resolve or
        // compensate with the gauge rows it replayed. Sharded runs
        // therefore do not support crash injection yet (see DESIGN.md).
        self.xp_pins.clear();
        self.timers.clear();
        // `spawn_seq` survives as an epoch stand-in: reusing SubtxnIds
        // could credit a stale in-flight completion notice to a new
        // subtransaction.
    }

    /// Rebuild state from the last checkpoint plus the WAL tail. Returns
    /// `false` when durability is off or no snapshot exists. The recovered
    /// node may lag the cluster on `(vr, vu)`; the §2.3/§4.1 skew rules
    /// (version inference from arriving subtransactions, coordinator
    /// retransmits) catch it up without a dedicated protocol.
    pub fn recover_install(&mut self) -> bool {
        if matches!(self.cfg.backend, BackendConfig::Paged { .. }) {
            return self.recover_install_paged();
        }
        let Some(d) = self.dur.as_mut() else {
            return false;
        };
        let Some(state) = d.recover() else {
            return false;
        };
        // The recovered image is the merged key-sorted view; a striped
        // node re-splits it by the same key hash it routes with.
        let store = if self.cfg.stripes > 1 {
            StripedStore::from_merged_parts(self.me, state.store.export_parts(), self.cfg.stripes)
        } else {
            StripedStore::from_single(state.store.into_any())
        };
        let locks = if self.cfg.stripes > 1 {
            StripedLocks::from_merged_parts(state.locks.export_parts(), self.cfg.stripes)
        } else {
            StripedLocks::from_single(state.locks)
        };
        // lint-allow(wal-hook-coverage): recovery installs state *read
        // from* the checkpoint+WAL; re-logging the install would duplicate
        // every record on the next recovery (replay is LSN-idempotent but
        // the log would grow unboundedly).
        self.store = store;
        self.locks = locks;
        self.counters = CounterTable::from_parts(state.counters);
        self.vu = state.vu;
        self.vr = state.vr;
        self.stats.recoveries += 1;
        self.stats.wal_replayed += state.replayed;
        true
    }

    /// Paged-backend recovery: the chains are recovered by *reopening the
    /// page files*, not from the snapshot (which carried `external_store`
    /// and an empty image). The WAL tail replays store-directed records
    /// above the page files' durable LSN and control records above the
    /// snapshot's LSN — two independent guards, because flush and
    /// checkpoint-install are separate atomic steps.
    fn recover_install_paged(&mut self) -> bool {
        if !self.store.persists_chains() {
            // The crash dropped the volatile handle to an empty mem
            // placeholder; the chains survive in the page files.
            // lint-allow(panic-hygiene): unopenable/corrupt page files at
            // recovery are fail-stop by design — same rationale as
            // construction.
            let backend = self
                .cfg
                .backend
                .open(self.me)
                .unwrap_or_else(|e| panic!("{}: cannot reopen storage backend: {e}", self.me));
            // lint-allow(wal-hook-coverage): recovery installs state read
            // back from disk; logging the install would duplicate records.
            self.store = StripedStore::from_single(Store::on_backend(backend, self.me));
        }
        let store_lsn = self.store.durable_lsn().unwrap_or(0);
        let Some(d) = self.dur.as_mut() else {
            return false;
        };
        // Durable paged nodes are single-stripe (enforced at
        // construction), so replay targets the one underlying store.
        let Some(state) = d.recover_paged(self.store.single_mut(), store_lsn) else {
            return false;
        };
        // Control state always recovers from checkpoint + log regardless
        // of backend; only the chains live in the page files.
        // lint-allow(wal-hook-coverage): recovery install, as above.
        self.locks = StripedLocks::from_single(state.locks);
        self.counters = CounterTable::from_parts(state.counters);
        self.vu = state.vu;
        self.vr = state.vr;
        self.stats.recoveries += 1;
        self.stats.wal_replayed += state.replayed;
        true
    }

    // ------------------------------------------------------------ helpers

    fn schedule(&mut self, ctx: &mut Ctx<'_, Msg>, delay: SimDuration, action: TimerAction) {
        let token = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(token, action);
        ctx.schedule(delay, token);
    }

    fn new_sub_id(&mut self) -> SubtxnId {
        let id = SubtxnId::new(self.me, self.spawn_seq);
        self.spawn_seq += 1;
        id
    }

    /// Route one protocol message to its handler. The profiled
    /// [`Stage::Dispatch`] span is the whole-message envelope; the
    /// validate/lock/store/counter/WAL stages nest inside it.
    fn dispatch(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        let t0 = self.prof_start();
        self.dispatch_inner(ctx, from, msg);
        self.prof_end(Stage::Dispatch, t0);
    }

    fn dispatch_inner(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Submit {
                txn,
                kind,
                plan,
                client,
                fail_node,
            } => self.handle_submit(ctx, txn, kind, plan, client, fail_node),
            Msg::Subtxn {
                txn,
                kind,
                version,
                plan,
                parent_sub,
                client,
                fail_node,
            } => self.handle_subtxn(
                ctx, from, txn, kind, version, plan, parent_sub, client, fail_node,
            ),
            Msg::SubtreeDone {
                txn,
                parent_sub,
                participants,
                clean,
            } => self.handle_subtree_done(ctx, from, txn, parent_sub, participants, clean),
            Msg::Compensate { txn, version } => self.handle_compensate(ctx, from, txn, version),
            Msg::XpResolve { txn } => self.handle_xp_resolve(ctx, txn),
            Msg::StartAdvancement { vu_new } => self.handle_start_advancement(ctx, from, vu_new),
            Msg::AdvanceRead { vr_new } => self.handle_advance_read(ctx, from, vr_new),
            Msg::ReadCounters { round, version } => {
                self.handle_read_counters(ctx, from, round, version)
            }
            Msg::Gc { vr_new } => self.handle_gc(ctx, from, vr_new),
            Msg::NcPrepare { txn } => self.handle_nc_prepare(ctx, from, txn),
            Msg::NcVote { txn, node, yes } => self.handle_nc_vote(ctx, txn, node, yes),
            Msg::NcDecision { txn, commit } => self.handle_nc_decision(ctx, txn, commit),
            Msg::ReleaseLocks { txn } => self.handle_release_locks(ctx, txn),
            // Client- and coordinator-bound traffic that strays here (e.g.
            // in single-actor tests) is ignored.
            Msg::TxnDone { .. }
            | Msg::ReadResults { .. }
            | Msg::AdvanceAck { .. }
            | Msg::AdvanceReadAck { .. }
            | Msg::CountersReport { .. }
            | Msg::GcAck { .. }
            | Msg::TriggerAdvancement => {}
        }
    }
}

impl Actor for ThreeVNode {
    type Msg = Msg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        self.dispatch(ctx, from, msg);
        self.maybe_checkpoint();
    }

    fn on_batch(&mut self, ctx: &mut Ctx<'_, Msg>, batch: &mut Vec<(NodeId, Msg)>) {
        // Strictly in-order: batching only amortises the per-delivery
        // dispatch, it must be observationally identical to one
        // `on_message` per element (the batch-equivalence proptest pins
        // this down).
        self.stats.batches += 1;
        self.stats.batched_msgs += batch.len() as u64;
        for (from, msg) in batch.drain(..) {
            self.dispatch(ctx, from, msg);
        }
        self.maybe_checkpoint();
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        match self.timers.remove(&token) {
            Some(TimerAction::RetryJob(job)) => self.run_job(ctx, *job),
            Some(TimerAction::RetryNcRoot(txn)) => self.submit_nc_root(ctx, txn),
            None => {}
        }
        self.maybe_checkpoint();
    }

    fn on_crash(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.trace(|| "crashes (volatile state lost)".to_string());
        self.down = true;
        self.crash_volatile();
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.down = false;
        if self.recover_install() {
            ctx.trace(|| {
                format!(
                    "restarts; recovered to vu={} vr={} from checkpoint+log",
                    self.vu, self.vr
                )
            });
        }
    }
}
