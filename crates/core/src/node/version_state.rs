//! Version-state transitions: the node side of asynchronous advancement.
//!
//! Covers paper §4.3 (and the §2.3 races it must tolerate): switching the
//! update version `vu` on notice *or* by inference from an arriving
//! descendant, switching the read version `vr`, and serving the
//! coordinator's atomic counter snapshots. Releasing NC roots parked at
//! the `vu == vr + 1` gate also lives here, because the gate opens exactly
//! when `vr` moves.

use threev_durability::WalOp;
use threev_model::{NodeId, VersionNo};
use threev_sim::Ctx;

use crate::msg::Msg;

use super::{Job, ThreeVNode};

impl ThreeVNode {
    /// Raise `vu` (never lowers). `inferred` distinguishes the §2.3 case —
    /// a descendant carrying a newer version acts as the notice.
    pub(super) fn advance_vu(&mut self, ctx: &mut Ctx<'_, Msg>, vu_new: VersionNo, inferred: bool) {
        if vu_new > self.vu {
            self.wal(WalOp::SetVu(vu_new));
            self.vu = vu_new;
            if ctx.tracing() {
                let how = if inferred {
                    "inferred from arriving subtx"
                } else {
                    "notice arrives"
                };
                ctx.trace(|| format!("advances update version to {vu_new} ({how})"));
            }
        } else if ctx.tracing() && !inferred {
            ctx.trace(|| format!("update version already advanced to {}", self.vu));
        }
    }

    pub(super) fn handle_start_advancement(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        vu_new: VersionNo,
    ) {
        self.wal(WalOp::Phase {
            version: vu_new,
            phase: 1,
        });
        self.advance_vu(ctx, vu_new, false);
        ctx.send_tagged(from, Msg::AdvanceAck { vu_new }, "advance");
    }

    pub(super) fn handle_advance_read(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        vr_new: VersionNo,
    ) {
        if vr_new > self.vr {
            self.wal(WalOp::Phase {
                version: vr_new,
                phase: 3,
            });
            self.wal(WalOp::SetVr(vr_new));
            self.vr = vr_new;
            ctx.trace(|| format!("advances read version to {vr_new}"));
        }
        ctx.send_tagged(from, Msg::AdvanceReadAck { vr_new }, "advance");
        // The gate `V(K) == vr + 1` may now hold for waiting NC roots.
        let ready: Vec<Job> = {
            let vr = self.vr;
            let (ready, still): (Vec<Job>, Vec<Job>) = self
                .nc_waiting
                .drain(..)
                .partition(|j| j.version == vr.next());
            self.nc_waiting = still;
            ready
        };
        for job in ready {
            ctx.trace(|| format!("{} passes gate", job.txn));
            self.run_job(ctx, job);
        }
    }

    pub(super) fn handle_read_counters(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        round: u64,
        version: VersionNo,
    ) {
        let snapshot = self.counters.snapshot(version);
        // Echo round *and* version: the coordinator matches both, so a
        // duplicated or delayed report can never be credited to a later
        // poll of the same round number.
        ctx.send_tagged(
            from,
            Msg::CountersReport {
                round,
                version,
                snapshot,
            },
            "advance",
        );
    }
}
