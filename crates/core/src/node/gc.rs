//! Compensation, tombstones, and garbage collection.
//!
//! §3.2's compensating subtransactions and the state they leave behind are
//! two halves of one lifecycle: a compensation sweep marks footprints and
//! plants tombstones, and the GC pass (coordinator-driven, §4.3 phase 3)
//! reclaims versions plus the footprints whose version can no longer be
//! read or compensated.

use threev_durability::WalOp;
use threev_model::{NodeId, TxnId, VersionNo};
use threev_sim::Ctx;

use crate::msg::Msg;

use super::ThreeVNode;

impl ThreeVNode {
    pub(super) fn handle_compensate(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: TxnId,
        version: VersionNo,
    ) {
        // A compensating subtransaction is an ordinary subtransaction for
        // counter purposes: the sender incremented R, we increment C. A
        // *cross-partition* compensate is the exception — the sender is in
        // another version space and sent it uncounted, so nothing is owed.
        if self.cfg.topology.same_partition(from, self.me) {
            self.wal(WalOp::IncCompletion { version, from });
            self.counters.inc_completion(version, from);
        }
        match self.footprints.get_mut(&txn) {
            Some(fp) if !fp.compensated => {
                fp.compensated = true;
                self.stats.compensations_applied += 1;
                ctx.trace(|| format!("compensating subtx for {txn} applies"));
                // Undo and forward at the version the transaction executed
                // in *here*. Partition-local, that equals the message's
                // version (one tree, one version); across a boundary the
                // sender's version is meaningless and the footprint's is
                // the only correct one.
                let version = fp.version;
                let inverse = std::mem::take(&mut fp.inverse_steps);
                let neighbors: Vec<NodeId> = fp
                    .neighbors
                    .iter()
                    .copied()
                    .filter(|n| *n != from)
                    .collect();
                let notify_client = if fp.is_root { fp.client } else { None };
                for (key, op) in inverse {
                    self.wal(WalOp::Update {
                        key,
                        version,
                        op,
                        txn,
                    });
                    // The inverse step was recorded when the forward step
                    // applied, so it must apply too; a failure is a store
                    // defect. Skip the step — a partially-compensated
                    // footprint beats a dead node.
                    if self.store.update(key, version, op, txn, None).is_err() {
                        self.stats.invariant_breaches += 1;
                    }
                }
                // Forward to every other neighbour (§3.2: at most one
                // compensating subtransaction per node). Partition-local
                // hops are counted; cross-partition hops are not (the
                // receiver's pin protects its footprint instead).
                for n in neighbors {
                    if self.cfg.topology.same_partition(n, self.me) {
                        self.wal(WalOp::IncRequest { version, to: n });
                        self.counters.inc_request(version, n);
                    }
                    ctx.send_tagged(n, Msg::Compensate { txn, version }, "compensate");
                }
                // The flood is the abort-side resolution signal: any gauge
                // pins held here for this transaction release now.
                self.release_xp_pins(txn);
                if let Some(client) = notify_client {
                    ctx.send_tagged(
                        client,
                        Msg::TxnDone {
                            txn,
                            version,
                            committed: false,
                        },
                        "client",
                    );
                }
            }
            Some(_) => { /* already compensated: dedup */ }
            None => {
                // The original subtransaction has not arrived yet: tombstone
                // it so it executes as a no-op (and, if it already pinned on
                // arrival without leaving a footprint, unpin).
                self.tombstones.insert(txn);
                self.stats.tombstones += 1;
                self.release_xp_pins(txn);
            }
        }
    }

    /// A cross-partition transaction this node took part in committed
    /// cleanly: release its gauge pins. Unknown transactions are a no-op —
    /// the resolve is broadcast to every participant, pinned or not.
    pub(super) fn handle_xp_resolve(&mut self, ctx: &mut Ctx<'_, Msg>, txn: TxnId) {
        if self.xp_pins.contains_key(&txn) {
            ctx.trace(|| format!("{txn} resolved across partitions; pins release"));
            self.release_xp_pins(txn);
        }
    }

    pub(super) fn handle_gc(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, vr_new: VersionNo) {
        ctx.trace(|| format!("garbage-collects below {vr_new}"));
        self.wal(WalOp::Phase {
            version: vr_new,
            phase: 4,
        });
        self.wal(WalOp::Gc { vr_new });
        self.store.gc(vr_new);
        self.counters.gc(vr_new);
        // Tombstones and footprints of long-terminated transactions can be
        // dropped once their version is unreadable; compensation for them
        // can no longer arrive (their version's counters are balanced).
        self.footprints.retain(|_, f| f.version >= vr_new);
        // Tombstones are tiny; retain them for the run (correct and simple).
        ctx.send_tagged(from, Msg::GcAck { vr_new }, "advance");
    }
}
