//! Request/completion counters (paper §2.2, §4.3).
//!
//! For every active version `v`, node `p` keeps:
//!
//! * `R(v)pq` — requests *sent from* `p` *to* `q` for version-`v`
//!   subtransactions (including `R(v)pp`, incremented when a root
//!   subtransaction arrives at `p`); request counters live at the sender;
//! * `C(v)op` — version-`v` subtransactions *submitted by* `o` that have
//!   *completed at* `p`; completion counters live at the executor.
//!
//! All version-`v` activity has terminated exactly when `R(v)pq == C(v)pq`
//! for every ordered pair `(p, q)` — the coordinator assembles that matrix
//! from per-node snapshots (see [`CounterMatrix`]) and applies the two-round
//! stability rule described in [`crate::advance`].

use std::collections::BTreeMap;

use threev_model::{gauge_peer, NodeId, VersionNo};

/// One node's counters for one version: an outgoing request row and an
/// incoming completion row.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VersionCounters {
    /// `R(v)·q`: requests this node sent to `q` (including itself).
    /// Private: mutation happens only through [`CounterTable`]'s
    /// increment-only API, which is what keeps the §2.2 stable-property
    /// argument machine-checkable (see `threev-lint`'s
    /// counter-monotonicity rule).
    requests_to: BTreeMap<NodeId, u64>,
    /// `C(v)o·`: completions at this node of subtransactions from `o`.
    /// Private for the same reason as `requests_to`.
    completions_from: BTreeMap<NodeId, u64>,
}

/// All active-version counters of one node.
#[derive(Clone, Debug, Default)]
pub struct CounterTable {
    versions: BTreeMap<VersionNo, VersionCounters>,
}

impl CounterTable {
    /// New, empty table (counters materialise lazily at zero, which is
    /// equivalent to the paper's "allocate and initialize to zero").
    pub fn new() -> Self {
        CounterTable::default()
    }

    /// Increment `R(v)` towards `to` (before sending the subtransaction —
    /// §4.1 step 5 — so the request is never invisible while in flight).
    pub fn inc_request(&mut self, v: VersionNo, to: NodeId) {
        *self
            .versions
            .entry(v)
            .or_default()
            .requests_to
            .entry(to)
            .or_insert(0) += 1;
    }

    /// Increment `C(v)` from `source` (in the same atomic step as the
    /// subtransaction's termination — §4.1 step 6).
    pub fn inc_completion(&mut self, v: VersionNo, source: NodeId) {
        *self
            .versions
            .entry(v)
            .or_default()
            .completions_from
            .entry(source)
            .or_insert(0) += 1;
    }

    /// Atomic snapshot of this node's version-`v` counters.
    pub fn snapshot(&self, v: VersionNo) -> CounterSnapshot {
        let empty = VersionCounters::default();
        let vc = self.versions.get(&v).unwrap_or(&empty);
        CounterSnapshot {
            version: v,
            requests_to: vc.requests_to.iter().map(|(n, c)| (*n, *c)).collect(),
            completions_from: vc.completions_from.iter().map(|(n, c)| (*n, *c)).collect(),
        }
    }

    /// Drop counters for all versions `< vr_new` (§4.3 Phase 4 GC).
    pub fn gc(&mut self, vr_new: VersionNo) {
        self.versions.retain(|v, _| *v >= vr_new);
    }

    /// Number of versions with live counters (observability/tests).
    pub fn active_versions(&self) -> usize {
        self.versions.len()
    }

    /// Raw access for assertions in tests.
    pub fn request(&self, v: VersionNo, to: NodeId) -> u64 {
        self.versions
            .get(&v)
            .and_then(|vc| vc.requests_to.get(&to))
            .copied()
            .unwrap_or(0)
    }

    /// Raw access for assertions in tests.
    pub fn completion(&self, v: VersionNo, from: NodeId) -> u64 {
        self.versions
            .get(&v)
            .and_then(|vc| vc.completions_from.get(&from))
            .copied()
            .unwrap_or(0)
    }

    /// Export for a durability checkpoint: per version (sorted), the
    /// request and completion rows as sorted `(node, count)` lists.
    #[allow(clippy::type_complexity)]
    pub fn to_parts(&self) -> Vec<(VersionNo, Vec<(NodeId, u64)>, Vec<(NodeId, u64)>)> {
        // BTreeMap iteration is already sorted by key, so the export (and
        // therefore every checkpoint and counter-poll snapshot built from
        // it) is canonical without an explicit sort.
        self.versions
            .iter()
            .map(|(v, vc)| {
                let reqs: Vec<_> = vc.requests_to.iter().map(|(n, c)| (*n, *c)).collect();
                let comps: Vec<_> = vc.completions_from.iter().map(|(n, c)| (*n, *c)).collect();
                (*v, reqs, comps)
            })
            .collect()
    }

    /// Rebuild a table from exported parts (checkpoint recovery).
    #[allow(clippy::type_complexity)]
    pub fn from_parts(parts: Vec<(VersionNo, Vec<(NodeId, u64)>, Vec<(NodeId, u64)>)>) -> Self {
        let mut versions = BTreeMap::new();
        for (v, reqs, comps) in parts {
            versions.insert(
                v,
                VersionCounters {
                    requests_to: reqs.into_iter().collect(),
                    completions_from: comps.into_iter().collect(),
                },
            );
        }
        CounterTable { versions }
    }
}

/// One node's reply to a coordinator counter poll. Taken atomically (a node
/// processes one message at a time), which the termination-detection proof
/// relies on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// The version polled.
    pub version: VersionNo,
    /// `(q, R(v)·q)` rows.
    pub requests_to: Vec<(NodeId, u64)>,
    /// `(o, C(v)o·)` rows.
    pub completions_from: Vec<(NodeId, u64)>,
}

/// The coordinator-side pairwise matrix assembled from all nodes' snapshots
/// for one version.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterMatrix {
    /// `(p, q) -> (R(v)pq, C(v)pq)`; `R` comes from `p`'s snapshot, `C`
    /// from `q`'s.
    pairs: BTreeMap<(NodeId, NodeId), (u64, u64)>,
}

impl CounterMatrix {
    /// Assemble from `(node, snapshot)` pairs (one snapshot per node).
    ///
    /// Cross-partition *gauge* rows (keys in the reserved range, see
    /// [`threev_model::gauge_node`]) are sender-local: the node that talks
    /// to a peer partition keeps **both** the R and the C row of that pair,
    /// so a gauge completion pairs as `(p, gauge)` — same key as `p`'s
    /// gauge request row — rather than the usual `(o, p)`. That is what
    /// lets one partition's matrix balance without ever polling another
    /// partition's nodes.
    pub fn assemble(snapshots: &[(NodeId, CounterSnapshot)]) -> Self {
        let mut pairs: BTreeMap<(NodeId, NodeId), (u64, u64)> = BTreeMap::new();
        for (p, snap) in snapshots {
            for (q, r) in &snap.requests_to {
                pairs.entry((*p, *q)).or_default().0 += r;
            }
            for (o, c) in &snap.completions_from {
                let key = if gauge_peer(*o).is_some() {
                    (*p, *o)
                } else {
                    (*o, *p)
                };
                pairs.entry(key).or_default().1 += c;
            }
        }
        CounterMatrix { pairs }
    }

    /// Is every pair balanced (`R == C`)?
    pub fn balanced(&self) -> bool {
        self.pairs.values().all(|(r, c)| r == c)
    }

    /// Total outstanding requests (`Σ R - Σ C`, saturating).
    pub fn outstanding(&self) -> u64 {
        let (r, c) = self
            .pairs
            .values()
            .fold((0u64, 0u64), |(ar, ac), (r, c)| (ar + r, ac + c));
        r.saturating_sub(c)
    }

    /// Number of tracked pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Is the matrix empty (no activity at all)?
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId(i)
    }
    fn v(i: u32) -> VersionNo {
        VersionNo(i)
    }

    #[test]
    fn lazy_counters_start_at_zero() {
        let t = CounterTable::new();
        assert_eq!(t.request(v(1), n(0)), 0);
        assert_eq!(t.completion(v(1), n(0)), 0);
        let snap = t.snapshot(v(1));
        assert!(snap.requests_to.is_empty());
        assert!(snap.completions_from.is_empty());
    }

    #[test]
    fn increments_accumulate() {
        let mut t = CounterTable::new();
        t.inc_request(v(1), n(1));
        t.inc_request(v(1), n(1));
        t.inc_request(v(2), n(1));
        t.inc_completion(v(1), n(0));
        assert_eq!(t.request(v(1), n(1)), 2);
        assert_eq!(t.request(v(2), n(1)), 1);
        assert_eq!(t.completion(v(1), n(0)), 1);
        assert_eq!(t.active_versions(), 2);
    }

    #[test]
    fn gc_drops_old_versions() {
        let mut t = CounterTable::new();
        t.inc_request(v(0), n(0));
        t.inc_request(v(1), n(0));
        t.inc_request(v(2), n(0));
        t.gc(v(2));
        assert_eq!(t.active_versions(), 1);
        assert_eq!(t.request(v(2), n(0)), 1);
        assert_eq!(t.request(v(1), n(0)), 0);
    }

    #[test]
    fn matrix_balances_paper_example() {
        // Paper Table 1 mid-flight: i at p spawned iq to q (R1pq=1) which
        // has not completed yet.
        let mut p = CounterTable::new();
        let mut q = CounterTable::new();
        p.inc_request(v(1), n(0)); // root at p
        p.inc_completion(v(1), n(0)); // root completed
        p.inc_request(v(1), n(1)); // spawned iq
        let m = CounterMatrix::assemble(&[(n(0), p.snapshot(v(1))), (n(1), q.snapshot(v(1)))]);
        assert!(!m.balanced());
        assert_eq!(m.outstanding(), 1);

        // iq completes at q (source = p).
        q.inc_completion(v(1), n(0));
        let m = CounterMatrix::assemble(&[(n(0), p.snapshot(v(1))), (n(1), q.snapshot(v(1)))]);
        assert!(m.balanced());
        assert_eq!(m.outstanding(), 0);
        assert_eq!(m.len(), 2); // (p,p) and (p,q)
    }

    #[test]
    fn matrix_detects_cross_pair_imbalance() {
        // Equal totals but unbalanced pairs must NOT pass.
        let mut p = CounterTable::new();
        let mut q = CounterTable::new();
        p.inc_request(v(1), n(1)); // p -> q request
        q.inc_completion(v(1), n(1)); // q completed something from q (!)
        let m = CounterMatrix::assemble(&[(n(0), p.snapshot(v(1))), (n(1), q.snapshot(v(1)))]);
        assert!(!m.balanced());
        assert_eq!(m.outstanding(), 0, "totals cancel but pairs do not");
    }

    #[test]
    fn gauge_rows_pair_sender_local() {
        use threev_model::{gauge_node, PartitionId};
        let g = gauge_node(PartitionId(1));
        // Node 0 ships a child to peer partition 1: R rises at the gauge.
        let mut p = CounterTable::new();
        p.inc_request(v(1), g);
        let m = CounterMatrix::assemble(&[(n(0), p.snapshot(v(1)))]);
        assert!(
            !m.balanced(),
            "in-flight cross-partition child holds v1 open"
        );
        assert_eq!(m.outstanding(), 1);

        // The peer's SubtreeDone comes back: C rises at the SAME node, and
        // the (node, gauge) pair balances without polling the peer.
        p.inc_completion(v(1), g);
        let m = CounterMatrix::assemble(&[(n(0), p.snapshot(v(1)))]);
        assert!(m.balanced());
        assert_eq!(m.len(), 1, "one (node, gauge) pair, no mirror entry");
    }

    #[test]
    fn gauge_imbalance_blocks_even_when_local_rows_balance() {
        use threev_model::{gauge_node, PartitionId};
        let g = gauge_node(PartitionId(3));
        // A re-rooted foreign subtxn pinned v1 open (R at the gauge) and
        // the XpResolve has not arrived; local activity is fully drained.
        let mut p = CounterTable::new();
        p.inc_request(v(1), n(0));
        p.inc_completion(v(1), n(0));
        p.inc_request(v(1), g);
        let m = CounterMatrix::assemble(&[(n(0), p.snapshot(v(1)))]);
        assert!(!m.balanced());
        p.inc_completion(v(1), g);
        let m = CounterMatrix::assemble(&[(n(0), p.snapshot(v(1)))]);
        assert!(m.balanced());
    }

    #[test]
    fn empty_matrix_is_balanced() {
        let m = CounterMatrix::assemble(&[]);
        assert!(m.balanced());
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn parts_round_trip() {
        let mut t = CounterTable::new();
        t.inc_request(v(2), n(1));
        t.inc_request(v(1), n(2));
        t.inc_request(v(1), n(0));
        t.inc_completion(v(1), n(1));
        let parts = t.to_parts();
        assert_eq!(
            parts,
            vec![
                (v(1), vec![(n(0), 1), (n(2), 1)], vec![(n(1), 1)]),
                (v(2), vec![(n(1), 1)], vec![]),
            ]
        );
        let rebuilt = CounterTable::from_parts(parts.clone());
        assert_eq!(rebuilt.to_parts(), parts);
        assert_eq!(rebuilt.request(v(1), n(2)), 1);
        assert_eq!(rebuilt.completion(v(1), n(1)), 1);
    }

    #[test]
    fn snapshots_are_value_copies() {
        let mut t = CounterTable::new();
        t.inc_request(v(1), n(1));
        let snap = t.snapshot(v(1));
        t.inc_request(v(1), n(1));
        assert_eq!(snap.requests_to, vec![(n(1), 1)]);
        assert_eq!(t.request(v(1), n(1)), 2);
    }
}
