//! One-call construction of a simulated 3V cluster.
//!
//! Actor layout: database nodes occupy ids `0..n`, the advancement
//! coordinator is `n`, and the client (workload driver) is `n + 1`.

use threev_analysis::{TxnRecord, VersionTimeline};
use threev_model::{NodeId, PartitionId, Schema, Topology};
use threev_sim::{Actor, Ctx, QuiesceOutcome, SimConfig, SimStats, SimTime, Simulation, Trace};
use threev_storage::{BackendConfig, StoreStats};

use crate::advance::{AdvancementPolicy, AdvancementRecord, Coordinator, CoordinatorConfig};
use crate::client::{Arrival, ClientActor};
use crate::msg::Msg;
use crate::node::{DurabilityMode, NodeConfig, NodeStats, ThreeVNode};

/// Protocol-level configuration of a 3V cluster.
#[derive(Clone, Debug, Default)]
pub struct ThreeVConfig {
    /// Per-node settings (locks, retries).
    pub node: NodeConfig,
    /// Coordinator settings (advancement policy, polling).
    pub coordinator: CoordinatorConfig,
}

/// Full cluster configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of database nodes.
    pub n_nodes: u16,
    /// Simulation kernel settings (latency model, seed, FIFO).
    pub sim: SimConfig,
    /// Protocol settings.
    pub protocol: ThreeVConfig,
}

impl ClusterConfig {
    /// Default configuration over `n_nodes` nodes.
    pub fn new(n_nodes: u16) -> Self {
        ClusterConfig {
            n_nodes,
            sim: SimConfig::default(),
            protocol: ThreeVConfig::default(),
        }
    }

    /// Set the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Enable NC3V locking (required when the workload contains
    /// non-commuting transactions).
    #[must_use]
    pub fn with_locks(mut self) -> Self {
        self.protocol.node.locks_enabled = true;
        self
    }

    /// Set the advancement policy.
    #[must_use]
    pub fn advancement(mut self, policy: AdvancementPolicy) -> Self {
        self.protocol.coordinator.policy = policy;
        self
    }

    /// Set the per-node durability mode (WAL + checkpoints). Required for
    /// nodes to survive injected crashes with their state intact.
    #[must_use]
    pub fn durability(mut self, mode: DurabilityMode) -> Self {
        self.protocol.node.durability = mode;
        self
    }

    /// Set the storage backend every node keeps its version chains in
    /// (in-memory map by default; on-disk page files with
    /// [`BackendConfig::Paged`]).
    #[must_use]
    pub fn backend(mut self, backend: BackendConfig) -> Self {
        self.protocol.node.backend = backend;
        self
    }

    /// Set the partition layout every node consults to tell local from
    /// foreign peers. Only sharded constructions call this; the default
    /// [`Topology::single`] leaves all single-cluster paths untouched.
    #[must_use]
    pub fn topology(mut self, topology: Topology) -> Self {
        self.protocol.node.topology = topology;
        self
    }

    /// Split every node's store and lock table into `n` key stripes
    /// (intra-node sharded execution; `1` is the classic engine). The
    /// `stripe_equivalence` suite pins striped runs to the unsharded
    /// fingerprint.
    #[must_use]
    pub fn stripes(mut self, n: u16) -> Self {
        self.protocol.node.stripes = n;
        self
    }

    /// Enable hot-path stage profiling on every node (observationally
    /// free; see `threev_core::node::profile`).
    #[must_use]
    pub fn profile(mut self, mode: crate::node::ProfileMode) -> Self {
        self.protocol.node.profile = mode;
        self
    }
}

/// One actor of the cluster (dispatch enum).
#[allow(clippy::large_enum_variant)]
pub enum ClusterActor {
    /// A database node.
    Node(ThreeVNode),
    /// The advancement coordinator.
    Coordinator(Coordinator),
    /// The workload driver.
    Client(ClientActor<Msg>),
}

impl Actor for ClusterActor {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        match self {
            ClusterActor::Node(_) => {}
            ClusterActor::Coordinator(c) => c.on_start(ctx),
            ClusterActor::Client(c) => c.on_start(ctx),
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match self {
            ClusterActor::Node(n) => n.on_message(ctx, from, msg),
            ClusterActor::Coordinator(c) => c.on_message(ctx, from, msg),
            ClusterActor::Client(c) => c.on_message(ctx, from, msg),
        }
    }

    fn on_batch(&mut self, ctx: &mut Ctx<'_, Msg>, batch: &mut Vec<(NodeId, Msg)>) {
        // Forward the whole batch so the inner actor's own `on_batch`
        // (not just the per-message default) sees it.
        match self {
            ClusterActor::Node(n) => n.on_batch(ctx, batch),
            ClusterActor::Coordinator(c) => c.on_batch(ctx, batch),
            ClusterActor::Client(c) => c.on_batch(ctx, batch),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        match self {
            ClusterActor::Node(n) => n.on_timer(ctx, token),
            ClusterActor::Coordinator(c) => c.on_timer(ctx, token),
            ClusterActor::Client(c) => c.on_timer(ctx, token),
        }
    }

    fn on_crash(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // Only database nodes have crash-injectable state; coordinator and
        // client crashes are out of scope for this reproduction.
        if let ClusterActor::Node(n) = self {
            n.on_crash(ctx);
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if let ClusterActor::Node(n) = self {
            n.on_restart(ctx);
        }
    }
}

/// Build the raw actor vector of a 3V cluster: nodes `0..n`, coordinator
/// `n`, client `n + 1`. Used directly by the real-thread runtime, which
/// hosts each actor on its own thread.
pub fn build_actors(
    schema: &Schema,
    cfg: &ClusterConfig,
    arrivals: Vec<Arrival>,
) -> Vec<ClusterActor> {
    assert!(
        schema.n_nodes() <= cfg.n_nodes,
        "schema names node {} but cluster has {}",
        schema.n_nodes().saturating_sub(1),
        cfg.n_nodes
    );
    let mut actors: Vec<ClusterActor> = (0..cfg.n_nodes)
        .map(|i| {
            ClusterActor::Node(ThreeVNode::new(
                schema,
                NodeId(i),
                cfg.protocol.node.clone(),
            ))
        })
        .collect();
    actors.push(ClusterActor::Coordinator(Coordinator::new(
        cfg.n_nodes,
        cfg.protocol.coordinator.clone(),
    )));
    actors.push(ClusterActor::Client(ClientActor::new(arrivals)));
    actors
}

/// Build the actor block of one partition of a sharded cluster, in the
/// global id layout fixed by the config's [`Topology`]: the partition's
/// database nodes, then its advancement coordinator (restricted to exactly
/// those nodes), then its client driving `arrivals`. The caller hosts the
/// block at the topology's base offset (e.g. via
/// `Simulation::new_partition`), so actor `i` of the returned vector is
/// global actor `base(p) + i`.
///
/// `schema` is the *global* schema: every node picks out the keys homed on
/// its own global id, so all partitions share one schema value.
pub fn build_partition_actors(
    schema: &Schema,
    cfg: &ClusterConfig,
    arrivals: Vec<Arrival>,
    p: PartitionId,
) -> Vec<ClusterActor> {
    let topo = cfg.protocol.node.topology;
    assert!(
        p.0 < topo.n_partitions(),
        "partition {p} outside topology with {} partitions",
        topo.n_partitions()
    );
    let nodes = topo.nodes(p);
    let mut actors: Vec<ClusterActor> = nodes
        .iter()
        .map(|id| ClusterActor::Node(ThreeVNode::new(schema, *id, cfg.protocol.node.clone())))
        .collect();
    actors.push(ClusterActor::Coordinator(Coordinator::for_nodes(
        nodes,
        cfg.protocol.coordinator.clone(),
    )));
    actors.push(ClusterActor::Client(ClientActor::new(arrivals)));
    actors
}

/// A fully wired simulated 3V cluster.
pub struct ThreeVCluster {
    sim: Simulation<ClusterActor>,
    n_nodes: u16,
}

impl ThreeVCluster {
    /// Build a cluster over `schema` with the given workload arrivals.
    pub fn new(schema: &Schema, cfg: ClusterConfig, arrivals: Vec<Arrival>) -> Self {
        let actors = build_actors(schema, &cfg, arrivals);
        ThreeVCluster {
            sim: Simulation::new(actors, cfg.sim),
            n_nodes: cfg.n_nodes,
        }
    }

    /// Actor id of the coordinator.
    pub fn coordinator_id(&self) -> NodeId {
        NodeId(self.n_nodes)
    }

    /// Actor id of the client.
    pub fn client_id(&self) -> NodeId {
        NodeId(self.n_nodes + 1)
    }

    /// Enable trace recording (Table 1 replay).
    pub fn enable_trace(&mut self) {
        self.sim.enable_trace();
    }

    /// Take the recorded trace.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.sim.take_trace()
    }

    /// Run until quiescent (or the virtual-time cap).
    pub fn run(&mut self, cap: SimTime) -> QuiesceOutcome {
        self.sim.run_to_quiescence(cap)
    }

    /// Run all events up to `until` and stop there (mid-run inspection).
    pub fn run_until(&mut self, until: SimTime) {
        self.sim.run_until(until)
    }

    /// Ask the coordinator for one advancement now.
    pub fn trigger_advancement(&mut self) {
        let coord = self.coordinator_id();
        let client = self.client_id();
        self.sim.inject(client, coord, Msg::TriggerAdvancement);
    }

    /// Inject an arbitrary protocol message for delivery at an absolute
    /// virtual time (scripted replays — the Table 1 scenario).
    pub fn inject_at(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: Msg) {
        self.sim.inject_at(at, from, to, msg);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Kernel statistics (message counts by tag — experiment X9).
    pub fn sim_stats(&self) -> &SimStats {
        self.sim.stats()
    }

    /// Transaction records collected by the client, if the client slot is
    /// populated as constructed (fallible view for defensive callers).
    pub fn try_records(&self) -> Option<&[TxnRecord]> {
        match self.sim.actors().get(self.n_nodes as usize + 1)? {
            ClusterActor::Client(c) => Some(c.records()),
            _ => None,
        }
    }

    /// Transaction records collected by the client.
    pub fn records(&self) -> &[TxnRecord] {
        // lint-allow(panic-hygiene): actor slots are fixed at construction
        // (indices 0..n are nodes, n the coordinator, n+1 the client) and
        // never move; a mismatch is a harness-construction defect, not a
        // reachable protocol state. Fallible callers use `try_records`.
        self.try_records().expect("client occupies actor slot n+1")
    }

    /// A node's engine (read access), if slot `i` holds a node.
    pub fn try_node(&self, i: u16) -> Option<&ThreeVNode> {
        match self.sim.actors().get(i as usize)? {
            ClusterActor::Node(n) => Some(n),
            _ => None,
        }
    }

    /// A node's engine (read access).
    pub fn node(&self, i: u16) -> &ThreeVNode {
        // lint-allow(panic-hygiene): slots 0..n hold nodes by construction;
        // out-of-range `i` is a test/bench indexing bug. Fallible callers
        // use `try_node`.
        self.try_node(i).expect("node index within 0..n_nodes")
    }

    /// The coordinator (read access), if the coordinator slot is populated
    /// as constructed.
    pub fn try_coordinator(&self) -> Option<&Coordinator> {
        match self.sim.actors().get(self.n_nodes as usize)? {
            ClusterActor::Coordinator(c) => Some(c),
            _ => None,
        }
    }

    /// The coordinator (read access).
    pub fn coordinator(&self) -> &Coordinator {
        // lint-allow(panic-hygiene): slot n holds the coordinator by
        // construction. Fallible callers use `try_coordinator`.
        self.try_coordinator()
            .expect("coordinator occupies actor slot n")
    }

    /// Aggregated storage statistics across nodes (each node's stats are
    /// merged across its store stripes).
    pub fn store_stats(&self) -> Vec<StoreStats> {
        (0..self.n_nodes)
            .map(|i| self.node(i).store_stats())
            .collect()
    }

    /// Aggregated protocol statistics across nodes.
    pub fn node_stats(&self) -> Vec<&NodeStats> {
        (0..self.n_nodes).map(|i| self.node(i).stats()).collect()
    }

    /// Completed advancement records.
    pub fn advancements(&self) -> &[AdvancementRecord] {
        self.coordinator().records()
    }

    /// The version timeline for staleness analysis.
    pub fn timeline(&self) -> &VersionTimeline {
        self.coordinator().timeline()
    }

    /// Highest number of simultaneously live versions of any item on any
    /// node, over the whole run (the paper's bound: ≤ 3).
    pub fn max_versions_high_water(&self) -> u32 {
        (0..self.n_nodes)
            .map(|i| self.node(i).store_stats().max_versions_of_any_item)
            .max()
            .unwrap_or(0)
    }

    /// Are all nodes quiescent (no in-flight protocol state)?
    pub fn all_quiescent(&self) -> bool {
        (0..self.n_nodes).all(|i| self.node(i).is_quiescent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advance::AdvancementPolicy;
    use threev_analysis::{Auditor, TxnStatus};
    use threev_model::{Key, KeyDecl, SubtxnPlan, TxnPlan, UpdateOp, Value, VersionNo};
    use threev_sim::SimDuration;

    fn k(i: u64) -> Key {
        Key(i)
    }
    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    /// Hospital-style schema over three nodes: one balance counter and one
    /// charge journal per node.
    fn schema() -> Schema {
        Schema::new(vec![
            KeyDecl::counter(k(1), n(0), 0),
            KeyDecl::journal(k(11), n(0)),
            KeyDecl::counter(k(2), n(1), 0),
            KeyDecl::journal(k(12), n(1)),
            KeyDecl::counter(k(3), n(2), 0),
            KeyDecl::journal(k(13), n(2)),
        ]);
        // (constructed again below to avoid accidental reuse of moved value)
        Schema::new(vec![
            KeyDecl::counter(k(1), n(0), 0),
            KeyDecl::journal(k(11), n(0)),
            KeyDecl::counter(k(2), n(1), 0),
            KeyDecl::journal(k(12), n(1)),
            KeyDecl::counter(k(3), n(2), 0),
            KeyDecl::journal(k(13), n(2)),
        ])
    }

    /// A visit: root on node 0 charging nodes 0..=2.
    fn visit(amount: i64) -> TxnPlan {
        TxnPlan::commuting(
            SubtxnPlan::new(n(0))
                .update(k(1), UpdateOp::Add(amount))
                .update(k(11), UpdateOp::Append { amount, tag: 1 })
                .child(
                    SubtxnPlan::new(n(1))
                        .update(k(2), UpdateOp::Add(amount))
                        .update(k(12), UpdateOp::Append { amount, tag: 1 }),
                )
                .child(
                    SubtxnPlan::new(n(2))
                        .update(k(3), UpdateOp::Add(amount))
                        .update(k(13), UpdateOp::Append { amount, tag: 1 }),
                ),
        )
    }

    /// A balance inquiry across all three nodes.
    fn inquiry() -> TxnPlan {
        TxnPlan::read_only(
            SubtxnPlan::new(n(0))
                .read(k(1))
                .read(k(11))
                .child(SubtxnPlan::new(n(1)).read(k(2)).read(k(12)))
                .child(SubtxnPlan::new(n(2)).read(k(3)).read(k(13))),
        )
    }

    fn ms(x: u64) -> SimTime {
        SimTime(x * 1_000)
    }

    #[test]
    fn update_and_read_complete() {
        let arrivals = vec![
            Arrival::at(ms(1), visit(100)),
            Arrival::at(ms(50), inquiry()),
        ];
        let mut cluster = ThreeVCluster::new(&schema(), ClusterConfig::new(3), arrivals);
        let out = cluster.run(SimTime::MAX);
        assert!(matches!(out, QuiesceOutcome::Quiescent(_)));
        let records = cluster.records();
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|r| r.status == TxnStatus::Committed));
        // The update ran at version 1, the read at version 0.
        assert_eq!(records[0].version, Some(VersionNo(1)));
        assert_eq!(records[1].version, Some(VersionNo(0)));
        // The read saw version-0 data: zero balances, empty journals.
        for obs in &records[1].reads {
            match &obs.value {
                Value::Counter(c) => assert_eq!(*c, 0),
                Value::Journal(j) => assert!(j.is_empty()),
                v => panic!("unexpected value {v}"),
            }
        }
        assert!(cluster.all_quiescent());
    }

    #[test]
    fn reads_see_updates_after_advancement() {
        let arrivals = vec![
            Arrival::at(ms(1), visit(100)),
            Arrival::at(ms(200), inquiry()),
        ];
        let mut cluster = ThreeVCluster::new(&schema(), ClusterConfig::new(3), arrivals);
        // Let the update finish, then advance, then the read arrives.
        cluster.run_until(ms(100));
        cluster.trigger_advancement();
        let out = cluster.run(SimTime::MAX);
        assert!(matches!(out, QuiesceOutcome::Quiescent(_)));
        let records = cluster.records();
        assert_eq!(records[1].version, Some(VersionNo(1)));
        let total: i64 = records[1]
            .reads
            .iter()
            .filter_map(|o| o.value.as_counter())
            .sum();
        assert_eq!(total, 300, "all three charges visible");
        assert_eq!(cluster.advancements().len(), 1);
        let adv = &cluster.advancements()[0];
        assert!(adv.p2_rounds >= 2, "two-round rule implies >= 2 polls");
        assert!(adv.total().as_micros() > 0);
    }

    #[test]
    fn advancement_is_asynchronous_with_updates() {
        // Updates keep flowing while advancement runs; none is delayed.
        let mut arrivals: Vec<Arrival> =
            (0..200).map(|i| Arrival::at(ms(1 + i), visit(1))).collect();
        arrivals.push(Arrival::at(ms(400), inquiry()));
        let cfg = ClusterConfig::new(3).advancement(AdvancementPolicy::Periodic {
            first: SimDuration::from_millis(20),
            period: SimDuration::from_millis(40),
        });
        let mut cluster = ThreeVCluster::new(&schema(), cfg, arrivals);
        // Periodic advancement re-arms forever, so run to a horizon instead
        // of quiescence and check the cluster drained.
        cluster.run_until(SimTime(60_000_000));
        assert!(cluster.all_quiescent());
        let records = cluster.records();
        assert!(records.iter().all(|r| r.status == TxnStatus::Committed));
        assert!(cluster.advancements().len() >= 3);
        // 3V bound: never more than three versions of any item.
        assert!(cluster.max_versions_high_water() <= 3);
        // Audit: serializability holds in the presence of advancement.
        let report = Auditor::new(records).check();
        assert!(report.clean(), "{report:?}");
    }

    #[test]
    fn versions_bounded_and_gc_runs() {
        let arrivals: Vec<Arrival> = (0..50).map(|i| Arrival::at(ms(i), visit(1))).collect();
        let cfg = ClusterConfig::new(3).advancement(AdvancementPolicy::Periodic {
            first: SimDuration::from_millis(5),
            period: SimDuration::from_millis(10),
        });
        let mut cluster = ThreeVCluster::new(&schema(), cfg, arrivals);
        cluster.run(SimTime(30_000_000));
        assert!(cluster.max_versions_high_water() <= 3);
        let gc_runs: u64 = cluster.store_stats().iter().map(|s| s.gc_runs).sum();
        assert!(gc_runs > 0, "gc must have run");
        // After quiesce + final GC, each node is down to <= 2 live versions.
        for i in 0..3 {
            assert!(cluster.node(i).store().current_max_versions() <= 2);
        }
    }

    #[test]
    fn deterministic_replay() {
        let build = || {
            let arrivals: Vec<Arrival> =
                (0..40).map(|i| Arrival::at(ms(i * 3), visit(1))).collect();
            let cfg = ClusterConfig::new(3)
                .seed(99)
                .advancement(AdvancementPolicy::Periodic {
                    first: SimDuration::from_millis(13),
                    period: SimDuration::from_millis(29),
                });
            let mut cluster = ThreeVCluster::new(&schema(), cfg, arrivals);
            cluster.run(SimTime(20_000_000));
            (
                cluster.now(),
                cluster.sim_stats().messages,
                cluster.records().len(),
            )
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn compensation_erases_failed_transaction() {
        // Fail the node-2 leg of a visit; compensation must erase the
        // node-0 and node-1 effects.
        let arrivals = vec![
            Arrival::failing_at(ms(1), visit(100), n(2)),
            Arrival::at(ms(2), visit(7)), // a healthy one, same keys
        ];
        let mut cluster = ThreeVCluster::new(&schema(), ClusterConfig::new(3), arrivals);
        let out = cluster.run(SimTime::MAX);
        assert!(matches!(out, QuiesceOutcome::Quiescent(_)));
        let records = cluster.records();
        assert_eq!(records[0].status, TxnStatus::Aborted);
        assert_eq!(records[1].status, TxnStatus::Committed);
        // Current version (1) state: only the healthy visit's effects.
        for (node, counter_key, journal_key) in
            [(0u16, k(1), k(11)), (1, k(2), k(12)), (2, k(3), k(13))]
        {
            let store = cluster.node(node).store();
            let layout = store.layout(counter_key).unwrap();
            let (_, latest) = layout.last().unwrap();
            assert_eq!(latest.as_counter(), Some(7), "node {node} counter");
            let layout = store.layout(journal_key).unwrap();
            let (_, latest) = layout.last().unwrap();
            assert_eq!(
                latest.as_journal().unwrap().len(),
                1,
                "node {node} journal has only the healthy entry"
            );
        }
        // Counters balanced: advancement still possible after compensation.
        cluster.trigger_advancement();
        let out = cluster.run(SimTime::MAX);
        assert!(matches!(out, QuiesceOutcome::Quiescent(_)));
        assert_eq!(cluster.advancements().len(), 1);
    }

    #[test]
    fn non_commuting_transactions_commit_via_2pc() {
        let schema = Schema::new(vec![
            KeyDecl::register(k(1), n(0), 0),
            KeyDecl::register(k(2), n(1), 0),
        ]);
        let nc = TxnPlan::non_commuting(
            SubtxnPlan::new(n(0))
                .update(k(1), UpdateOp::Assign(5))
                .child(SubtxnPlan::new(n(1)).update(k(2), UpdateOp::Assign(6))),
        );
        let arrivals = vec![Arrival::at(ms(1), nc)];
        let cfg = ClusterConfig::new(2).with_locks();
        let mut cluster = ThreeVCluster::new(&schema, cfg, arrivals);
        let out = cluster.run(SimTime::MAX);
        assert!(matches!(out, QuiesceOutcome::Quiescent(_)));
        let records = cluster.records();
        assert_eq!(records[0].status, TxnStatus::Committed);
        let v1 = cluster.node(0).store().layout(k(1)).unwrap();
        assert_eq!(v1.last().unwrap().1.as_register(), Some(5));
        let v2 = cluster.node(1).store().layout(k(2)).unwrap();
        assert_eq!(v2.last().unwrap().1.as_register(), Some(6));
        assert!(cluster.all_quiescent());
        // Advancement drains NC counters too.
        cluster.trigger_advancement();
        let out = cluster.run(SimTime::MAX);
        assert!(matches!(out, QuiesceOutcome::Quiescent(_)));
        assert_eq!(cluster.advancements().len(), 1);
    }

    #[test]
    fn nc_gate_holds_during_advancement() {
        // An NC transaction submitted mid-advancement waits for the gate
        // and still commits.
        let schema = Schema::new(vec![
            KeyDecl::register(k(1), n(0), 0),
            KeyDecl::counter(k(2), n(1), 0),
        ]);
        let nc = TxnPlan::non_commuting(SubtxnPlan::new(n(0)).update(k(1), UpdateOp::Assign(9)));
        // Keep version 1 busy so phase 2 takes a while.
        let busy: Vec<Arrival> = (0..30)
            .map(|i| {
                Arrival::at(
                    ms(i),
                    TxnPlan::commuting(SubtxnPlan::new(n(1)).update(k(2), UpdateOp::Add(1))),
                )
            })
            .collect();
        let mut arrivals = busy;
        arrivals.push(Arrival::at(ms(6), nc));
        let cfg = ClusterConfig::new(2)
            .with_locks()
            .advancement(AdvancementPolicy::Periodic {
                first: SimDuration::from_millis(5),
                period: SimDuration::from_secs(1000),
            });
        let mut cluster = ThreeVCluster::new(&schema, cfg, arrivals);
        cluster.run_until(SimTime(30_000_000));
        assert!(cluster.all_quiescent());
        let records = cluster.records();
        assert!(records.iter().all(|r| r.status == TxnStatus::Committed));
        let gated: u64 = cluster.node_stats().iter().map(|s| s.nc_gated).sum();
        assert!(gated >= 1, "the NC txn should have hit the gate");
    }
}
