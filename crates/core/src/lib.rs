//! The 3V algorithm (Jagadish, Mumick & Rabinovich, ICDE 1997).
//!
//! A distributed database keeps up to three versions of each data item:
//! read-only transactions run against the read version `vr`, commuting
//! update transactions against the update version `vu`, and a **completely
//! asynchronous** four-phase advancement process moves both forward without
//! ever delaying a user transaction (Theorem 4.2). Non-commuting updates are
//! handled by the NC3V extension (§5) with commute/exclusive locks and
//! two-phase commit.
//!
//! Crate layout:
//!
//! * [`msg`] — the wire protocol: subtransaction shipment, completion
//!   notices, advancement control, counter polling, compensation, NC3V 2PC;
//! * [`counters`] — the per-version request/completion counter tables
//!   (`R(v)pq` at the sender, `C(v)pq` at the executor, §2.2/§4.3);
//! * [`node`] — the per-node engine: §4.1 update execution, §4.2 queries,
//!   version-skew rules, compensation (§3.2), NC3V (§5);
//! * [`advance`] — the advancement coordinator: the four phases of §4.3 and
//!   the two-round stable-counter termination detection, with the safety
//!   argument documented inline;
//! * [`client`] — the workload driver actor shared by every engine in the
//!   workspace (baselines reuse it via the [`msg::ProtocolMsg`] trait);
//! * [`cluster`] — one-call construction of a simulated 3V cluster.
//!
//! ```
//! use threev_core::cluster::{ClusterConfig, ThreeVCluster};
//! use threev_core::client::Arrival;
//! use threev_model::{KeyDecl, Schema, SubtxnPlan, TxnPlan, UpdateOp, Key, NodeId};
//! use threev_sim::{SimTime, SimDuration};
//!
//! // Two nodes, one counter each; one update spanning both, then a read.
//! let schema = Schema::new(vec![
//!     KeyDecl::counter(Key(1), NodeId(0), 0),
//!     KeyDecl::counter(Key(2), NodeId(1), 0),
//! ]);
//! let update = TxnPlan::commuting(
//!     SubtxnPlan::new(NodeId(0))
//!         .update(Key(1), UpdateOp::Add(5))
//!         .child(SubtxnPlan::new(NodeId(1)).update(Key(2), UpdateOp::Add(5))),
//! );
//! let read = TxnPlan::read_only(
//!     SubtxnPlan::new(NodeId(0))
//!         .read(Key(1))
//!         .child(SubtxnPlan::new(NodeId(1)).read(Key(2))),
//! );
//! let arrivals = vec![
//!     Arrival::at(SimTime(1_000), update),
//!     Arrival::at(SimTime(2_000), read),
//! ];
//! let mut cluster = ThreeVCluster::new(&schema, ClusterConfig::new(2), arrivals);
//! cluster.run(SimTime(10_000_000));
//! let records = cluster.records();
//! assert_eq!(records.len(), 2);
//! assert!(records.iter().all(|r| r.status == threev_analysis::TxnStatus::Committed));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod advance;
pub mod client;
pub mod cluster;
pub mod codec;
pub mod counters;
pub mod msg;
pub mod node;

pub use advance::{AdvancementPolicy, AdvancementRecord, Coordinator};
pub use client::{Arrival, ClientActor};
pub use cluster::{ClusterConfig, ThreeVCluster, ThreeVConfig};
pub use codec::MSG_WIRE_VERSION;
pub use counters::{CounterMatrix, CounterSnapshot, CounterTable};
pub use msg::{ClientEvent, Msg, ProtocolMsg};
pub use node::{DurabilityMode, InvariantView, ThreeVNode};
