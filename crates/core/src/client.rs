//! The workload-driver actor, shared by every engine.
//!
//! The client owns the run's ground truth: it assigns transaction ids,
//! submits plans at their scheduled arrival times, and fills in the
//! [`TxnRecord`]s that the analysis crate summarises and audits. It is
//! generic over the engine's message type through [`ProtocolMsg`], so the
//! 3V engine and all three baselines are driven by the exact same code.

use std::collections::BTreeMap;

use threev_analysis::{TxnRecord, TxnStatus};
use threev_model::{NodeId, TxnId, TxnPlan};
use threev_sim::{Actor, Ctx, SimTime};

use crate::msg::{ClientEvent, ProtocolMsg};

/// One scheduled transaction arrival.
#[derive(Clone, Debug)]
pub struct Arrival {
    /// Virtual time the client submits the transaction.
    pub at: SimTime,
    /// The plan.
    pub plan: TxnPlan,
    /// Fault injection: the node whose subtransaction will abort
    /// (experiment X10). `None` for normal transactions.
    pub fail_node: Option<NodeId>,
}

impl Arrival {
    /// A normal arrival.
    pub fn at(at: SimTime, plan: TxnPlan) -> Self {
        Arrival {
            at,
            plan,
            fail_node: None,
        }
    }

    /// An arrival whose subtransaction at `node` will abort and compensate.
    pub fn failing_at(at: SimTime, plan: TxnPlan, node: NodeId) -> Self {
        Arrival {
            at,
            plan,
            fail_node: Some(node),
        }
    }
}

/// The client actor: submits [`Arrival`]s in time order and records what
/// comes back.
pub struct ClientActor<M> {
    arrivals: Vec<Arrival>,
    next: usize,
    next_seq: u64,
    records: Vec<TxnRecord>,
    index: BTreeMap<TxnId, usize>,
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M: ProtocolMsg> ClientActor<M> {
    /// New client over `arrivals` (will be sorted by time).
    pub fn new(mut arrivals: Vec<Arrival>) -> Self {
        arrivals.sort_by_key(|a| a.at);
        ClientActor {
            arrivals,
            next: 0,
            next_seq: 0,
            records: Vec::new(),
            index: BTreeMap::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Records collected so far (complete after the run quiesces).
    pub fn records(&self) -> &[TxnRecord] {
        &self.records
    }

    /// Consume the client, returning its records.
    pub fn into_records(self) -> Vec<TxnRecord> {
        self.records
    }

    fn submit_due(&mut self, ctx: &mut Ctx<'_, M>) {
        while self.next < self.arrivals.len() && self.arrivals[self.next].at <= ctx.now() {
            let arrival = self.arrivals[self.next].clone();
            self.next += 1;
            let root = arrival.plan.root.node;
            let txn = TxnId::new(self.next_seq, root);
            self.next_seq += 1;

            // Ground truth for the auditor: journal keys this plan appends
            // to. (Counters cannot be audited per-writer; journals can.)
            let journal_keys = arrival.plan.journal_keys();

            self.index.insert(txn, self.records.len());
            self.records.push(TxnRecord::submitted(
                txn,
                arrival.plan.kind,
                ctx.now(),
                journal_keys,
            ));
            ctx.send_tagged(
                root,
                M::submit(
                    txn,
                    arrival.plan.kind,
                    arrival.plan.root,
                    ctx.me(),
                    arrival.fail_node,
                ),
                "submit",
            );
        }
        self.schedule_next(ctx);
    }

    fn schedule_next(&mut self, ctx: &mut Ctx<'_, M>) {
        if let Some(a) = self.arrivals.get(self.next) {
            ctx.schedule(a.at.since(ctx.now()), 0);
        }
    }

    fn record_mut(&mut self, txn: TxnId) -> Option<&mut TxnRecord> {
        self.index.get(&txn).map(|&i| &mut self.records[i])
    }

    /// Register a transaction submitted from *outside* the arrival list —
    /// the network front end injects `Msg::Submit` directly into the
    /// simulation, then calls this so the completion that bounces back to
    /// the client actor lands in a known record instead of being dropped
    /// by [`record_mut`]. The caller owns id assignment; `kind` and
    /// `journal_keys` mirror what [`submit_due`](Self::submit_due) records
    /// for scheduled arrivals.
    pub fn register_external(
        &mut self,
        txn: TxnId,
        kind: threev_model::TxnKind,
        at: SimTime,
        journal_keys: Vec<threev_model::Key>,
    ) {
        self.index.insert(txn, self.records.len());
        self.records
            .push(TxnRecord::submitted(txn, kind, at, journal_keys));
    }
}

impl<M: ProtocolMsg> Actor for ClientActor<M> {
    type Msg = M;

    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        self.schedule_next(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, _token: u64) {
        self.submit_due(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, _from: NodeId, msg: M) {
        let Some(event) = msg.client_event() else {
            return;
        };
        let now = ctx.now();
        match event {
            ClientEvent::Done {
                txn,
                version,
                committed,
            } => {
                if let Some(rec) = self.record_mut(txn) {
                    if rec.completed.is_none() {
                        rec.completed = Some(now);
                    }
                    // An abort report always wins: the completion chain and
                    // the compensation path race (see node::tree_complete).
                    if !committed {
                        rec.status = TxnStatus::Aborted;
                    } else if rec.status == TxnStatus::InFlight {
                        rec.status = TxnStatus::Committed;
                    }
                    if rec.version.is_none() {
                        rec.version = version;
                    }
                }
            }
            ClientEvent::Reads { txn, reads } => {
                if let Some(rec) = self.record_mut(txn) {
                    rec.reads.extend(reads);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_model::{Key, SubtxnPlan, TxnKind, UpdateOp};

    /// Minimal message type standing in for an engine.
    #[derive(Debug, Clone)]
    enum FakeMsg {
        Submit {
            txn: TxnId,
            #[allow(dead_code)]
            kind: TxnKind,
        },
        Done {
            txn: TxnId,
        },
    }

    impl ProtocolMsg for FakeMsg {
        fn submit(
            txn: TxnId,
            kind: TxnKind,
            _plan: SubtxnPlan,
            _client: NodeId,
            _fail: Option<NodeId>,
        ) -> Self {
            FakeMsg::Submit { txn, kind }
        }
        fn client_event(self) -> Option<ClientEvent> {
            match self {
                FakeMsg::Done { txn } => Some(ClientEvent::Done {
                    txn,
                    version: None,
                    committed: true,
                }),
                _ => None,
            }
        }
    }

    /// Echo node: acks every submission.
    struct EchoNode;
    impl Actor for EchoNode {
        type Msg = FakeMsg;
        fn on_message(&mut self, ctx: &mut Ctx<'_, FakeMsg>, from: NodeId, msg: FakeMsg) {
            if let FakeMsg::Submit { txn, .. } = msg {
                ctx.send(from, FakeMsg::Done { txn });
            }
        }
    }

    enum TestActor {
        Node(EchoNode),
        Client(ClientActor<FakeMsg>),
    }
    impl Actor for TestActor {
        type Msg = FakeMsg;
        fn on_start(&mut self, ctx: &mut Ctx<'_, FakeMsg>) {
            if let TestActor::Client(c) = self {
                c.on_start(ctx)
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, FakeMsg>, from: NodeId, msg: FakeMsg) {
            match self {
                TestActor::Node(n) => n.on_message(ctx, from, msg),
                TestActor::Client(c) => c.on_message(ctx, from, msg),
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, FakeMsg>, token: u64) {
            if let TestActor::Client(c) = self {
                c.on_timer(ctx, token)
            }
        }
    }

    fn plan(journal: bool) -> TxnPlan {
        let mut p = SubtxnPlan::new(NodeId(0)).update(Key(1), UpdateOp::Add(1));
        if journal {
            p = p.update(Key(2), UpdateOp::Append { amount: 5, tag: 1 });
        }
        TxnPlan::commuting(p)
    }

    #[test]
    fn submits_in_order_and_records_completions() {
        use threev_sim::{SimConfig, SimTime, Simulation};
        let arrivals = vec![
            Arrival::at(SimTime(3_000), plan(false)),
            Arrival::at(SimTime(1_000), plan(true)),
        ];
        let client = ClientActor::<FakeMsg>::new(arrivals);
        let mut sim = Simulation::new(
            vec![TestActor::Node(EchoNode), TestActor::Client(client)],
            SimConfig::seeded(1),
        );
        sim.run_to_quiescence(SimTime::MAX);
        let TestActor::Client(c) = &sim.actors()[1] else {
            unreachable!()
        };
        let records = c.records();
        assert_eq!(records.len(), 2);
        // Sorted by arrival: the journal plan (t=1ms) got seq 0.
        assert_eq!(records[0].id.seq, 0);
        assert_eq!(records[0].journal_keys_written, vec![Key(2)]);
        assert!(records[1].journal_keys_written.is_empty());
        assert!(records.iter().all(|r| r.status == TxnStatus::Committed));
        assert!(records[0].submitted >= SimTime(1_000));
        assert!(records[0].completed.unwrap() > records[0].submitted);
    }
}
