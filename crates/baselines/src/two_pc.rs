//! The **Global Synchronization** baseline (paper §1, option 1).
//!
//! "The system can treat all global transactions … as full-fledged
//! distributed transactions, performing global concurrency control and
//! two-phase commitment. This solution guarantees global serializability …
//! However, the delays due to global synchronization are often
//! prohibitive."
//!
//! Every transaction — **including read-only ones** — acquires strict
//! two-phase locks (shared for reads, exclusive for writes) with wait-die
//! deadlock avoidance, executes its tree, and then runs a two-phase commit
//! over all participant nodes. Wait-die victims are retried with their
//! original timestamp until they commit (or a retry cap is hit).
//!
//! This is the serializable-but-slow yardstick of experiments X1/X9: its
//! schedule `fw11(x1); r21(x1); …g` forbids exactly the interleavings 3V
//! admits safely through versioning.

use std::collections::BTreeMap;

use threev_analysis::{ReadObservation, TxnRecord};
use threev_model::{Key, NodeId, OpStep, Schema, SubtxnId, SubtxnPlan, TxnId, TxnKind, VersionNo};
use threev_sim::{
    Actor, Ctx, QuiesceOutcome, SimConfig, SimDuration, SimStats, SimTime, Simulation,
};
use threev_storage::{LockDecision, LockMode, LockTable, Store, StoreStats, UndoLog};

use threev_core::client::{Arrival, ClientActor};
use threev_core::msg::{ClientEvent, ProtocolMsg};

use crate::tree::{Drained, SubTracker, TrackerTable};

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct TwoPcConfig {
    /// Backoff before resubmitting a wait-die victim.
    pub retry_backoff: SimDuration,
    /// Retry cap before reporting the transaction aborted.
    pub max_retries: u32,
}

impl Default for TwoPcConfig {
    fn default() -> Self {
        TwoPcConfig {
            retry_backoff: SimDuration::from_micros(800),
            max_retries: 50,
        }
    }
}

/// Messages of the global-2PC engine.
#[derive(Clone, Debug)]
pub enum TpcMsg {
    /// Client submission.
    Submit {
        /// Transaction id.
        txn: TxnId,
        /// Plan root.
        plan: SubtxnPlan,
        /// Reporting actor.
        client: NodeId,
    },
    /// Child subtransaction shipment.
    Subtxn {
        /// Transaction id.
        txn: TxnId,
        /// Retry attempt number (guards against stale 2PC traffic).
        attempt: u32,
        /// Plan subtree.
        plan: SubtxnPlan,
        /// Parent subtransaction.
        parent_sub: SubtxnId,
        /// Reporting actor.
        client: NodeId,
    },
    /// Completion notice up the tree (work phase only; locks still held).
    SubtreeDone {
        /// Transaction id.
        txn: TxnId,
        /// Parent subtransaction notified.
        parent_sub: SubtxnId,
        /// Executing nodes.
        participants: Vec<NodeId>,
        /// False when any subtransaction was a wait-die victim.
        clean: bool,
    },
    /// 2PC prepare.
    Prepare {
        /// Transaction id.
        txn: TxnId,
        /// Attempt the prepare belongs to.
        attempt: u32,
    },
    /// 2PC vote.
    Vote {
        /// Transaction id.
        txn: TxnId,
        /// Attempt the vote belongs to.
        attempt: u32,
        /// Voting node.
        node: NodeId,
        /// Prepared?
        yes: bool,
    },
    /// 2PC decision.
    Decision {
        /// Transaction id.
        txn: TxnId,
        /// Attempt the decision belongs to.
        attempt: u32,
        /// Commit or roll back.
        commit: bool,
    },
    /// Node → client: transaction finished.
    TxnDone {
        /// Transaction id.
        txn: TxnId,
        /// Final outcome.
        committed: bool,
    },
    /// Node → client: read observations.
    ReadResults {
        /// Transaction id.
        txn: TxnId,
        /// Observations.
        reads: Vec<ReadObservation>,
    },
}

impl ProtocolMsg for TpcMsg {
    fn submit(
        txn: TxnId,
        _kind: TxnKind,
        plan: SubtxnPlan,
        client: NodeId,
        _fail_node: Option<NodeId>,
    ) -> Self {
        TpcMsg::Submit { txn, plan, client }
    }

    fn client_event(self) -> Option<ClientEvent> {
        match self {
            TpcMsg::TxnDone { txn, committed } => Some(ClientEvent::Done {
                txn,
                version: None,
                committed,
            }),
            TpcMsg::ReadResults { txn, reads } => Some(ClientEvent::Reads { txn, reads }),
            _ => None,
        }
    }
}

#[derive(Debug, Default)]
struct TpcLocal {
    undo: UndoLog,
    doomed: bool,
    attempt: u32,
}

#[derive(Debug)]
struct TpcCoord {
    participants: Vec<NodeId>,
    votes: BTreeMap<NodeId, bool>,
    attempt: u32,
}

#[derive(Debug)]
struct RootCtx {
    plan: SubtxnPlan,
    client: NodeId,
    retries_left: u32,
    attempt: u32,
}

#[derive(Debug)]
struct Job {
    txn: TxnId,
    attempt: u32,
    plan: SubtxnPlan,
    parent: Option<(NodeId, SubtxnId)>,
    client: NodeId,
}

#[derive(Debug)]
struct Parked {
    keys: Vec<(Key, LockMode)>,
    next: usize,
    job: Job,
}

/// Observable engine statistics.
#[derive(Clone, Debug, Default)]
pub struct TpcStats {
    /// Subtransactions executed.
    pub subtxns_executed: u64,
    /// Wait-die victims (whole-transaction aborts).
    pub die_aborts: u64,
    /// Subtransactions parked on a lock.
    pub parked: u64,
    /// Transactions that exhausted retries.
    pub gave_up: u64,
    /// Commits.
    pub commits: u64,
    /// Steps dropped because the plan referenced a key or type outside
    /// the schema.
    pub plan_errors: u64,
}

/// The global-2PC node engine.
pub struct TpcNode {
    me: NodeId,
    cfg: TwoPcConfig,
    store: Store,
    locks: LockTable,
    trackers: TrackerTable,
    local: BTreeMap<TxnId, TpcLocal>,
    coord: BTreeMap<TxnId, TpcCoord>,
    root_ctx: BTreeMap<TxnId, RootCtx>,
    parked: BTreeMap<TxnId, Parked>,
    timers: BTreeMap<u64, TxnId>,
    next_timer: u64,
    stats: TpcStats,
}

impl TpcNode {
    /// Build from the schema.
    pub fn new(schema: &Schema, me: NodeId, cfg: TwoPcConfig) -> Self {
        TpcNode {
            me,
            cfg,
            store: Store::from_schema(schema, me),
            locks: LockTable::new(),
            trackers: TrackerTable::default(),
            local: BTreeMap::new(),
            coord: BTreeMap::new(),
            root_ctx: BTreeMap::new(),
            parked: BTreeMap::new(),
            timers: BTreeMap::new(),
            next_timer: 0,
            stats: TpcStats::default(),
        }
    }

    /// The node's store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Engine statistics.
    pub fn stats(&self) -> &TpcStats {
        &self.stats
    }

    /// Is this node fully drained?
    pub fn is_quiescent(&self) -> bool {
        self.trackers.is_empty()
            && self.local.is_empty()
            && self.coord.is_empty()
            && self.parked.is_empty()
            && self.locks.is_idle()
    }

    fn run_job(&mut self, ctx: &mut Ctx<'_, TpcMsg>, job: Job) {
        // Doomed already (a sibling of the same attempt lost wait-die
        // here)? Terminate the subtree without effects.
        if self
            .local
            .get(&job.txn)
            .is_some_and(|l| l.doomed && l.attempt == job.attempt)
        {
            self.finish_doomed(ctx, job);
            return;
        }
        let mut keys: Vec<(Key, LockMode)> = job
            .plan
            .steps
            .iter()
            .map(|s| match s {
                OpStep::Read(k) => (*k, LockMode::Commute), // shared
                OpStep::Update(k, _) => (*k, LockMode::Exclusive),
            })
            .collect();
        // Strongest mode per key, deterministic order.
        keys.sort_by_key(|(k, m)| (*k, matches!(m, LockMode::Commute)));
        keys.dedup_by_key(|(k, _)| *k);
        self.acquire_and_run(ctx, Parked { keys, next: 0, job });
    }

    fn acquire_and_run(&mut self, ctx: &mut Ctx<'_, TpcMsg>, mut parked: Parked) {
        while parked.next < parked.keys.len() {
            let (key, mode) = parked.keys[parked.next];
            match self.locks.acquire(key, mode, parked.job.txn) {
                LockDecision::Granted => parked.next += 1,
                LockDecision::Waiting => {
                    self.stats.parked += 1;
                    self.parked.insert(parked.job.txn, parked);
                    return;
                }
                LockDecision::Abort => {
                    // Keep every lock this transaction already holds here:
                    // an earlier subtransaction of the same attempt may
                    // have applied (uncommitted) effects under them. All
                    // locks fall together at the abort decision's rollback.
                    self.stats.die_aborts += 1;
                    let job = parked.job;
                    let local = self.local.entry(job.txn).or_default();
                    local.doomed = true;
                    local.attempt = job.attempt;
                    self.finish_doomed(ctx, job);
                    return;
                }
            }
        }
        self.execute(ctx, parked.job);
    }

    fn finish_doomed(&mut self, ctx: &mut Ctx<'_, TpcMsg>, job: Job) {
        let sub_id = self.trackers.new_sub_id(self.me);
        self.trackers.insert(
            sub_id,
            SubTracker {
                txn: job.txn,
                parent: job.parent,
                client: job.client,
                pending_children: 0,
                participants: Default::default(),
                clean: false,
            },
        );
        let drained = self.trackers.finish(self.me, sub_id);
        self.dispatch_drained(ctx, drained);
    }

    fn process_grants(&mut self, ctx: &mut Ctx<'_, TpcMsg>, grants: threev_storage::locks::Grants) {
        for (txn, key, _mode) in grants {
            if let Some(mut parked) = self.parked.remove(&txn) {
                debug_assert_eq!(parked.keys[parked.next].0, key);
                parked.next += 1;
                self.acquire_and_run(ctx, parked);
            }
        }
    }

    fn execute(&mut self, ctx: &mut Ctx<'_, TpcMsg>, job: Job) {
        self.stats.subtxns_executed += 1;
        let mut local = self.local.remove(&job.txn).unwrap_or_default();
        if local.attempt != job.attempt {
            // A fresh attempt overtook the previous attempt's abort
            // decision. That attempt is certainly aborting (a retry exists
            // only after the root decided abort), so roll its effects back
            // NOW — the stale decision, when it arrives, will see the
            // attempt mismatch and do nothing.
            self.store.rollback(std::mem::take(&mut local.undo));
            local = TpcLocal {
                attempt: job.attempt,
                ..TpcLocal::default()
            };
        }
        let mut reads = Vec::new();
        for step in &job.plan.steps {
            match step {
                OpStep::Read(key) => {
                    // A read can only fail on a plan that references a key
                    // outside the schema: drop the step rather than take
                    // the node down.
                    let Ok((_, value)) = self.store.read_visible(*key, VersionNo::ZERO) else {
                        self.stats.plan_errors += 1;
                        continue;
                    };
                    reads.push(ReadObservation {
                        key: *key,
                        version: None,
                        value,
                    });
                }
                OpStep::Update(key, op) => {
                    // Malformed plan (unknown key / type mismatch): drop
                    // the step rather than take the node down.
                    if self
                        .store
                        .update(*key, VersionNo::ZERO, *op, job.txn, Some(&mut local.undo))
                        .is_err()
                    {
                        self.stats.plan_errors += 1;
                    }
                }
            }
        }
        self.local.insert(job.txn, local);

        let sub_id = self.trackers.new_sub_id(self.me);
        for child in &job.plan.children {
            ctx.send_tagged(
                child.node,
                TpcMsg::Subtxn {
                    txn: job.txn,
                    attempt: job.attempt,
                    plan: child.clone(),
                    parent_sub: sub_id,
                    client: job.client,
                },
                "subtxn",
            );
        }
        if !reads.is_empty() {
            ctx.send_tagged(
                job.client,
                TpcMsg::ReadResults {
                    txn: job.txn,
                    reads,
                },
                "client",
            );
        }
        self.trackers.insert(
            sub_id,
            SubTracker {
                txn: job.txn,
                parent: job.parent,
                client: job.client,
                pending_children: job.plan.children.len() as u32,
                participants: Default::default(),
                clean: true,
            },
        );
        if job.plan.children.is_empty() {
            let drained = self.trackers.finish(self.me, sub_id);
            self.dispatch_drained(ctx, drained);
        }
    }

    fn dispatch_drained(&mut self, ctx: &mut Ctx<'_, TpcMsg>, drained: Drained) {
        match drained {
            Drained::Parent {
                txn,
                node,
                parent_sub,
                participants,
                clean,
            } => {
                ctx.send_tagged(
                    node,
                    TpcMsg::SubtreeDone {
                        txn,
                        parent_sub,
                        participants: participants.into_iter().collect(),
                        clean,
                    },
                    "notice",
                );
            }
            Drained::Root(tracker, participants) => {
                let participants: Vec<NodeId> = participants.into_iter().collect();
                let attempt = self
                    .root_ctx
                    .get(&tracker.txn)
                    .map(|r| r.attempt)
                    .unwrap_or(0);
                if tracker.clean {
                    self.coord.insert(
                        tracker.txn,
                        TpcCoord {
                            participants: participants.clone(),
                            votes: BTreeMap::new(),
                            attempt,
                        },
                    );
                    for p in &participants {
                        ctx.send_tagged(
                            *p,
                            TpcMsg::Prepare {
                                txn: tracker.txn,
                                attempt,
                            },
                            "2pc",
                        );
                    }
                } else {
                    for p in &participants {
                        ctx.send_tagged(
                            *p,
                            TpcMsg::Decision {
                                txn: tracker.txn,
                                attempt,
                                commit: false,
                            },
                            "2pc",
                        );
                    }
                    self.root_epilogue(ctx, tracker.txn, false);
                }
            }
            Drained::Pending => {}
        }
    }

    fn root_epilogue(&mut self, ctx: &mut Ctx<'_, TpcMsg>, txn: TxnId, committed: bool) {
        let Some(root) = self.root_ctx.get_mut(&txn) else {
            return;
        };
        if committed {
            self.stats.commits += 1;
            let client = root.client;
            self.root_ctx.remove(&txn);
            ctx.send_tagged(
                client,
                TpcMsg::TxnDone {
                    txn,
                    committed: true,
                },
                "client",
            );
        } else if root.retries_left > 0 {
            root.retries_left -= 1;
            root.attempt += 1;
            let token = self.next_timer;
            self.next_timer += 1;
            self.timers.insert(token, txn);
            ctx.schedule(self.cfg.retry_backoff, token);
        } else {
            self.stats.gave_up += 1;
            let client = root.client;
            self.root_ctx.remove(&txn);
            ctx.send_tagged(
                client,
                TpcMsg::TxnDone {
                    txn,
                    committed: false,
                },
                "client",
            );
        }
    }
}

impl Actor for TpcNode {
    type Msg = TpcMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, TpcMsg>, from: NodeId, msg: TpcMsg) {
        match msg {
            TpcMsg::Submit { txn, plan, client } => {
                self.root_ctx.entry(txn).or_insert(RootCtx {
                    plan: plan.clone(),
                    client,
                    retries_left: self.cfg.max_retries,
                    attempt: 0,
                });
                self.run_job(
                    ctx,
                    Job {
                        txn,
                        attempt: 0,
                        plan,
                        parent: None,
                        client,
                    },
                );
            }
            TpcMsg::Subtxn {
                txn,
                attempt,
                plan,
                parent_sub,
                client,
            } => self.run_job(
                ctx,
                Job {
                    txn,
                    attempt,
                    plan,
                    parent: Some((from, parent_sub)),
                    client,
                },
            ),
            TpcMsg::SubtreeDone {
                parent_sub,
                participants,
                clean,
                ..
            } => {
                let drained = self
                    .trackers
                    .child_done(self.me, parent_sub, participants, clean);
                self.dispatch_drained(ctx, drained);
            }
            TpcMsg::Prepare { txn, attempt } => {
                let yes = self
                    .local
                    .get(&txn)
                    .map(|l| !l.doomed && l.attempt == attempt)
                    .unwrap_or(true);
                ctx.send_tagged(
                    from,
                    TpcMsg::Vote {
                        txn,
                        attempt,
                        node: self.me,
                        yes,
                    },
                    "2pc",
                );
            }
            TpcMsg::Vote {
                txn,
                attempt,
                node,
                yes,
            } => {
                let Some(coord) = self.coord.get_mut(&txn) else {
                    return;
                };
                if coord.attempt != attempt {
                    return;
                }
                coord.votes.insert(node, yes);
                if coord.votes.len() == coord.participants.len() {
                    let commit = coord.votes.values().all(|v| *v);
                    let Some(coord) = self.coord.remove(&txn) else {
                        return;
                    };
                    for p in &coord.participants {
                        ctx.send_tagged(
                            *p,
                            TpcMsg::Decision {
                                txn,
                                attempt,
                                commit,
                            },
                            "2pc",
                        );
                    }
                    self.root_epilogue(ctx, txn, commit);
                }
            }
            TpcMsg::Decision {
                txn,
                attempt,
                commit,
            } => {
                // Ignore decisions of stale attempts: their locks and undo
                // were already cleaned when the node saw the abort, and a
                // newer attempt may be running here.
                if self.local.get(&txn).is_some_and(|l| l.attempt != attempt) {
                    return;
                }
                if let Some(mut local) = self.local.remove(&txn) {
                    if !commit {
                        self.store.rollback(std::mem::take(&mut local.undo));
                    }
                }
                let grants = self.locks.release_all(txn);
                self.process_grants(ctx, grants);
            }
            TpcMsg::TxnDone { .. } | TpcMsg::ReadResults { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, TpcMsg>, token: u64) {
        let Some(txn) = self.timers.remove(&token) else {
            return;
        };
        let Some(root) = self.root_ctx.get(&txn) else {
            return;
        };
        let (plan, client, attempt) = (root.plan.clone(), root.client, root.attempt);
        self.run_job(
            ctx,
            Job {
                txn,
                attempt,
                plan,
                parent: None,
                client,
            },
        );
    }
}

/// One actor of a 2PC cluster.
#[allow(clippy::large_enum_variant)]
pub enum TpcActor {
    /// A database node.
    Node(TpcNode),
    /// The workload driver.
    Client(ClientActor<TpcMsg>),
}

impl Actor for TpcActor {
    type Msg = TpcMsg;
    fn on_start(&mut self, ctx: &mut Ctx<'_, TpcMsg>) {
        if let TpcActor::Client(c) = self {
            c.on_start(ctx)
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, TpcMsg>, from: NodeId, msg: TpcMsg) {
        match self {
            TpcActor::Node(n) => n.on_message(ctx, from, msg),
            TpcActor::Client(c) => c.on_message(ctx, from, msg),
        }
    }
    fn on_batch(&mut self, ctx: &mut Ctx<'_, TpcMsg>, batch: &mut Vec<(NodeId, TpcMsg)>) {
        match self {
            TpcActor::Node(n) => n.on_batch(ctx, batch),
            TpcActor::Client(c) => c.on_batch(ctx, batch),
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, TpcMsg>, token: u64) {
        match self {
            TpcActor::Node(n) => n.on_timer(ctx, token),
            TpcActor::Client(c) => c.on_timer(ctx, token),
        }
    }
}

/// A simulated global-2PC cluster (nodes `0..n`, client `n`).
pub struct TwoPcCluster {
    sim: Simulation<TpcActor>,
    n_nodes: u16,
}

impl TwoPcCluster {
    /// Build over `schema` with the given arrivals.
    pub fn new(
        schema: &Schema,
        n_nodes: u16,
        sim: SimConfig,
        cfg: TwoPcConfig,
        arrivals: Vec<Arrival>,
    ) -> Self {
        let mut actors: Vec<TpcActor> = (0..n_nodes)
            .map(|i| TpcActor::Node(TpcNode::new(schema, NodeId(i), cfg.clone())))
            .collect();
        actors.push(TpcActor::Client(ClientActor::new(arrivals)));
        TwoPcCluster {
            sim: Simulation::new(actors, sim),
            n_nodes,
        }
    }

    /// Run until quiescent or capped.
    pub fn run(&mut self, cap: SimTime) -> QuiesceOutcome {
        self.sim.run_to_quiescence(cap)
    }

    /// Transaction records.
    pub fn records(&self) -> &[TxnRecord] {
        match &self.sim.actors()[self.n_nodes as usize] {
            TpcActor::Client(c) => c.records(),
            // lint-allow(panic-hygiene): actor slots are fixed at
            // construction (0..n nodes, n client); a mismatch is a
            // harness-construction defect, not a reachable message state.
            _ => unreachable!(),
        }
    }

    /// Kernel statistics.
    pub fn sim_stats(&self) -> &SimStats {
        self.sim.stats()
    }

    /// A node (read access).
    pub fn node(&self, i: u16) -> &TpcNode {
        match &self.sim.actors()[i as usize] {
            TpcActor::Node(n) => n,
            // lint-allow(panic-hygiene): slots 0..n hold nodes by
            // construction; an out-of-range index is a test/bench bug.
            _ => unreachable!(),
        }
    }

    /// A node's storage statistics.
    pub fn store_stats(&self, i: u16) -> &StoreStats {
        self.node(i).store().stats()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Are all nodes drained?
    pub fn all_quiescent(&self) -> bool {
        (0..self.n_nodes).all(|i| self.node(i).is_quiescent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_analysis::{Auditor, TxnStatus};
    use threev_model::{KeyDecl, TxnPlan, UpdateOp};

    fn schema() -> Schema {
        Schema::new(vec![
            KeyDecl::counter(Key(1), NodeId(0), 0),
            KeyDecl::journal(Key(11), NodeId(0)),
            KeyDecl::counter(Key(2), NodeId(1), 0),
            KeyDecl::journal(Key(12), NodeId(1)),
        ])
    }

    fn visit(amount: i64) -> TxnPlan {
        TxnPlan::commuting(
            SubtxnPlan::new(NodeId(0))
                .update(Key(1), UpdateOp::Add(amount))
                .update(Key(11), UpdateOp::Append { amount, tag: 1 })
                .child(
                    SubtxnPlan::new(NodeId(1))
                        .update(Key(2), UpdateOp::Add(amount))
                        .update(Key(12), UpdateOp::Append { amount, tag: 1 }),
                ),
        )
    }

    fn inquiry() -> TxnPlan {
        TxnPlan::read_only(
            SubtxnPlan::new(NodeId(0))
                .read(Key(1))
                .read(Key(11))
                .child(SubtxnPlan::new(NodeId(1)).read(Key(2)).read(Key(12))),
        )
    }

    #[test]
    fn commits_with_2pc() {
        let arrivals = vec![
            Arrival::at(SimTime(1_000), visit(10)),
            Arrival::at(SimTime(1_050), visit(20)),
            Arrival::at(SimTime(1_100), inquiry()),
        ];
        let mut cluster = TwoPcCluster::new(
            &schema(),
            2,
            SimConfig::seeded(5),
            TwoPcConfig::default(),
            arrivals,
        );
        let out = cluster.run(SimTime::MAX);
        assert!(matches!(out, QuiesceOutcome::Quiescent(_)), "{out:?}");
        let records = cluster.records();
        assert!(
            records.iter().all(|r| r.status == TxnStatus::Committed),
            "{records:?}"
        );
        assert!(cluster.all_quiescent());
        let (_, v) = cluster.node(0).store().layout(Key(1)).unwrap()[0].clone();
        assert_eq!(v.as_counter(), Some(30));
    }

    #[test]
    fn serializable_under_contention() {
        // Racing updates and reads on the same keys: 2PL+2PC must stay
        // atomic (no partial reads), unlike no-coordination.
        // Arrival spacing must exceed the 2PC service time (locks held for
        // tree + prepare + decision ≈ a few ms at LAN latency) or the
        // engine saturates — which is the paper's very point, but not what
        // this correctness test is probing.
        let mut arrivals = Vec::new();
        for i in 0..150u64 {
            arrivals.push(Arrival::at(SimTime(i * 6_000), visit(1)));
            arrivals.push(Arrival::at(SimTime(i * 6_000 + 700), inquiry()));
        }
        let mut cluster = TwoPcCluster::new(
            &schema(),
            2,
            SimConfig::seeded(11),
            TwoPcConfig::default(),
            arrivals,
        );
        let out = cluster.run(SimTime(600_000_000));
        assert!(matches!(out, QuiesceOutcome::Quiescent(_)), "{out:?}");
        let records = cluster.records();
        let committed = records
            .iter()
            .filter(|r| r.status == TxnStatus::Committed)
            .count();
        assert!(committed >= 250, "most transactions commit: {committed}");
        let report = Auditor::new(records).check();
        assert_eq!(report.atomicity_violations, 0, "{report:?}");
        assert_eq!(report.aborted_visible, 0);
    }

    #[test]
    fn wait_die_resolves_cross_lock_contention() {
        // Two simultaneous visits write the same two keys from opposite
        // ends; wait-die must resolve any conflict and both finish.
        let reverse_visit = TxnPlan::commuting(
            SubtxnPlan::new(NodeId(1))
                .update(Key(2), UpdateOp::Add(1))
                .child(SubtxnPlan::new(NodeId(0)).update(Key(1), UpdateOp::Add(1))),
        );
        let arrivals = vec![
            Arrival::at(SimTime(1_000), visit(1)),
            Arrival::at(SimTime(1_001), reverse_visit),
        ];
        let mut cluster = TwoPcCluster::new(
            &schema(),
            2,
            SimConfig::seeded(13),
            TwoPcConfig::default(),
            arrivals,
        );
        let out = cluster.run(SimTime(60_000_000));
        assert!(matches!(out, QuiesceOutcome::Quiescent(_)), "{out:?}");
        let records = cluster.records();
        assert!(records.iter().all(|r| r.status == TxnStatus::Committed));
        let (_, v) = cluster.node(0).store().layout(Key(1)).unwrap()[0].clone();
        assert_eq!(v.as_counter(), Some(2));
    }
}
