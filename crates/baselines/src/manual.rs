//! The **Manual Versioning** baseline (paper §1, option 3).
//!
//! "One can accumulate update transactions for some period, say a month, in
//! a new version that is not available for reading. … Some time after the
//! month ends, we hope that all updates have been applied to that month's
//! version … Meanwhile, accumulation of update transactions for the next
//! month takes place in a new version."
//!
//! Each node switches its *update* version on a fixed local period (with
//! per-node clock jitter — the switchover is **not coordinated**) and its
//! *read* version a conservative `read_delay` later. Two defects follow,
//! both quoted from the paper and both measurable here:
//!
//! * **Lost stragglers** — a subtransaction delayed past the switchover
//!   writes the old version after newer copies were taken, so "a bill …
//!   may still report only a part of the charges" (updates use
//!   [`threev_storage::Store::update_exact`], not 3V's update-all-≥ rule);
//! * **Staleness** — reads run a full period (plus delay) behind, and the
//!   delay must be set "conservatively high" to keep violations rare.

use threev_analysis::{ReadObservation, TxnRecord};
use threev_model::{NodeId, OpStep, Schema, SubtxnId, SubtxnPlan, TxnId, TxnKind, VersionNo};
use threev_sim::{Actor, Ctx, SimConfig, SimDuration, SimStats, SimTime, Simulation};
use threev_storage::{Store, StoreError, StoreStats};

use rand::Rng;
use threev_analysis::VersionTimeline;
use threev_core::client::{Arrival, ClientActor};
use threev_core::msg::{ClientEvent, ProtocolMsg};

use std::collections::BTreeMap;

use crate::tree::{Drained, SubTracker, TrackerTable};

/// Manual-versioning configuration.
#[derive(Clone, Debug)]
pub struct ManualConfig {
    /// Accumulation period (the paper's "month").
    pub period: SimDuration,
    /// Conservative delay after the period ends before reads switch.
    pub read_delay: SimDuration,
    /// Maximum per-switch clock jitter between nodes (uncoordinated
    /// switchover).
    pub jitter: SimDuration,
}

impl Default for ManualConfig {
    fn default() -> Self {
        ManualConfig {
            period: SimDuration::from_millis(100),
            read_delay: SimDuration::from_millis(20),
            jitter: SimDuration::from_millis(2),
        }
    }
}

/// Messages of the manual-versioning engine.
#[derive(Clone, Debug)]
pub enum ManMsg {
    /// Client submission.
    Submit {
        /// Transaction id.
        txn: TxnId,
        /// Read-only or update.
        kind: TxnKind,
        /// Plan root.
        plan: SubtxnPlan,
        /// Reporting actor.
        client: NodeId,
    },
    /// Child subtransaction shipment (carries the root's version).
    Subtxn {
        /// Transaction id.
        txn: TxnId,
        /// The version stamped by the root node.
        version: VersionNo,
        /// Plan subtree.
        plan: SubtxnPlan,
        /// Parent subtransaction.
        parent_sub: SubtxnId,
        /// Reporting actor.
        client: NodeId,
    },
    /// Completion notice up the tree.
    SubtreeDone {
        /// Transaction id.
        txn: TxnId,
        /// Parent subtransaction notified.
        parent_sub: SubtxnId,
        /// Executing nodes.
        participants: Vec<NodeId>,
    },
    /// Node → client: transaction finished.
    TxnDone {
        /// Transaction id.
        txn: TxnId,
        /// Version the transaction was stamped with.
        version: VersionNo,
    },
    /// Node → client: read observations.
    ReadResults {
        /// Transaction id.
        txn: TxnId,
        /// Observations.
        reads: Vec<ReadObservation>,
    },
}

impl ProtocolMsg for ManMsg {
    fn submit(
        txn: TxnId,
        kind: TxnKind,
        plan: SubtxnPlan,
        client: NodeId,
        _fail_node: Option<NodeId>,
    ) -> Self {
        ManMsg::Submit {
            txn,
            kind,
            plan,
            client,
        }
    }

    fn client_event(self) -> Option<ClientEvent> {
        match self {
            ManMsg::TxnDone { txn, version } => Some(ClientEvent::Done {
                txn,
                version: Some(version),
                committed: true,
            }),
            ManMsg::ReadResults { txn, reads } => Some(ClientEvent::Reads { txn, reads }),
            _ => None,
        }
    }
}

/// Observable engine statistics.
#[derive(Clone, Debug, Default)]
pub struct ManualStats {
    /// Updates dropped because their version was already garbage-collected
    /// (arrived far too late — data loss).
    pub lost_updates: u64,
    /// Reads that found no visible version (served nothing).
    pub lost_reads: u64,
    /// Update-version switches performed.
    pub update_switches: u64,
    /// Read-version switches performed.
    pub read_switches: u64,
}

const TIMER_UPDATE_SWITCH: u64 = 0;
const TIMER_READ_SWITCH: u64 = 1;

/// A manual-versioning node.
pub struct ManualNode {
    me: NodeId,
    cfg: ManualConfig,
    vu: VersionNo,
    vr: VersionNo,
    store: Store,
    trackers: TrackerTable,
    /// Version each locally-executed subtransaction was stamped with
    /// (needed to report the root's version at completion).
    versions: BTreeMap<SubtxnId, VersionNo>,
    stats: ManualStats,
}

impl ManualNode {
    /// Build from the schema; starts like 3V with `vr = 0`, `vu = 1`.
    pub fn new(schema: &Schema, me: NodeId, cfg: ManualConfig) -> Self {
        ManualNode {
            me,
            cfg,
            vu: VersionNo(1),
            vr: VersionNo(0),
            store: Store::from_schema(schema, me),
            trackers: TrackerTable::default(),
            versions: BTreeMap::new(),
            stats: ManualStats::default(),
        }
    }

    /// The node's store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Engine statistics.
    pub fn stats(&self) -> &ManualStats {
        &self.stats
    }

    /// Current read version.
    pub fn vr(&self) -> VersionNo {
        self.vr
    }

    fn execute(
        &mut self,
        ctx: &mut Ctx<'_, ManMsg>,
        txn: TxnId,
        version: VersionNo,
        plan: SubtxnPlan,
        parent: Option<(NodeId, SubtxnId)>,
        client: NodeId,
    ) {
        let mut reads = Vec::new();
        for step in &plan.steps {
            match step {
                OpStep::Read(key) => match self.store.read_visible(*key, version) {
                    Ok((ver, value)) => reads.push(ReadObservation {
                        key: *key,
                        version: Some(ver),
                        value,
                    }),
                    Err(StoreError::NoVisibleVersion { .. }) => self.stats.lost_reads += 1,
                    // Any other error means the plan referenced a key or
                    // type outside the schema: drop the step rather than
                    // take the node down.
                    Err(_) => {}
                },
                OpStep::Update(key, op) => {
                    // The defining difference from 3V: write exactly the
                    // stamped version. Newer copies never hear about it.
                    match self.store.update_exact(*key, version, *op, txn) {
                        Ok(_) => {}
                        Err(StoreError::NoVisibleVersion { .. }) => {
                            self.stats.lost_updates += 1;
                        }
                        // Malformed plan (unknown key / type mismatch):
                        // drop the step rather than take the node down.
                        Err(_) => {}
                    }
                }
            }
        }
        let sub_id = self.trackers.new_sub_id(self.me);
        self.versions.insert(sub_id, version);
        for child in &plan.children {
            ctx.send_tagged(
                child.node,
                ManMsg::Subtxn {
                    txn,
                    version,
                    plan: child.clone(),
                    parent_sub: sub_id,
                    client,
                },
                "subtxn",
            );
        }
        if !reads.is_empty() {
            ctx.send_tagged(client, ManMsg::ReadResults { txn, reads }, "client");
        }
        self.trackers.insert(
            sub_id,
            SubTracker {
                txn,
                parent,
                client,
                pending_children: plan.children.len() as u32,
                participants: Default::default(),
                clean: true,
            },
        );
        if plan.children.is_empty() {
            let drained = self.trackers.finish(self.me, sub_id);
            self.versions.remove(&sub_id);
            self.dispatch_drained(ctx, drained, version);
        }
    }

    fn dispatch_drained(
        &mut self,
        ctx: &mut Ctx<'_, ManMsg>,
        drained: Drained,
        version: VersionNo,
    ) {
        match drained {
            Drained::Parent {
                txn,
                node,
                parent_sub,
                participants,
                ..
            } => {
                ctx.send_tagged(
                    node,
                    ManMsg::SubtreeDone {
                        txn,
                        parent_sub,
                        participants: participants.into_iter().collect(),
                    },
                    "notice",
                );
            }
            Drained::Root(tracker, _) => {
                ctx.send_tagged(
                    tracker.client,
                    ManMsg::TxnDone {
                        txn: tracker.txn,
                        version,
                    },
                    "client",
                );
            }
            Drained::Pending => {}
        }
    }

    fn schedule_switch(&mut self, ctx: &mut Ctx<'_, ManMsg>, token: u64, base: SimDuration) {
        let jitter = if self.cfg.jitter.as_micros() == 0 {
            SimDuration::ZERO
        } else {
            SimDuration(ctx.rng().gen_range(0..=self.cfg.jitter.as_micros()))
        };
        ctx.schedule(base + jitter, token);
    }
}

impl Actor for ManualNode {
    type Msg = ManMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, ManMsg>) {
        let period = self.cfg.period;
        let delay = self.cfg.read_delay;
        self.schedule_switch(ctx, TIMER_UPDATE_SWITCH, period);
        self.schedule_switch(ctx, TIMER_READ_SWITCH, period + delay);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, ManMsg>, from: NodeId, msg: ManMsg) {
        match msg {
            ManMsg::Submit {
                txn,
                kind,
                plan,
                client,
            } => {
                let version = if kind == TxnKind::ReadOnly {
                    self.vr
                } else {
                    self.vu
                };
                self.execute(ctx, txn, version, plan, None, client);
            }
            ManMsg::Subtxn {
                txn,
                version,
                plan,
                parent_sub,
                client,
            } => self.execute(ctx, txn, version, plan, Some((from, parent_sub)), client),
            ManMsg::SubtreeDone {
                parent_sub,
                participants,
                ..
            } => {
                // Recover the version this subtransaction was stamped with
                // before the tracker is (possibly) consumed.
                let version = self.versions.get(&parent_sub).copied().unwrap_or(self.vu);
                let drained = self
                    .trackers
                    .child_done(self.me, parent_sub, participants, true);
                if !matches!(drained, Drained::Pending) {
                    self.versions.remove(&parent_sub);
                }
                self.dispatch_drained(ctx, drained, version);
            }
            ManMsg::TxnDone { .. } | ManMsg::ReadResults { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ManMsg>, token: u64) {
        let period = self.cfg.period;
        match token {
            TIMER_UPDATE_SWITCH => {
                self.vu = self.vu.next();
                self.stats.update_switches += 1;
                self.schedule_switch(ctx, TIMER_UPDATE_SWITCH, period);
            }
            TIMER_READ_SWITCH => {
                self.vr = self.vr.next();
                self.stats.read_switches += 1;
                // Keep one version behind the readable one for stragglers;
                // GC everything older.
                self.store.gc(self.vr.prev());
                self.schedule_switch(ctx, TIMER_READ_SWITCH, period);
            }
            _ => {}
        }
    }
}

/// One actor of a manual-versioning cluster.
#[allow(clippy::large_enum_variant)]
pub enum ManActor {
    /// A database node.
    Node(ManualNode),
    /// The workload driver.
    Client(ClientActor<ManMsg>),
}

impl Actor for ManActor {
    type Msg = ManMsg;
    fn on_start(&mut self, ctx: &mut Ctx<'_, ManMsg>) {
        match self {
            ManActor::Node(n) => n.on_start(ctx),
            ManActor::Client(c) => c.on_start(ctx),
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, ManMsg>, from: NodeId, msg: ManMsg) {
        match self {
            ManActor::Node(n) => n.on_message(ctx, from, msg),
            ManActor::Client(c) => c.on_message(ctx, from, msg),
        }
    }
    fn on_batch(&mut self, ctx: &mut Ctx<'_, ManMsg>, batch: &mut Vec<(NodeId, ManMsg)>) {
        match self {
            ManActor::Node(n) => n.on_batch(ctx, batch),
            ManActor::Client(c) => c.on_batch(ctx, batch),
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, ManMsg>, token: u64) {
        match self {
            ManActor::Node(n) => n.on_timer(ctx, token),
            ManActor::Client(c) => c.on_timer(ctx, token),
        }
    }
}

/// A simulated manual-versioning cluster (nodes `0..n`, client `n`).
pub struct ManualCluster {
    sim: Simulation<ManActor>,
    n_nodes: u16,
    cfg: ManualConfig,
}

impl ManualCluster {
    /// Build over `schema` with the given arrivals.
    pub fn new(
        schema: &Schema,
        n_nodes: u16,
        sim: SimConfig,
        cfg: ManualConfig,
        arrivals: Vec<Arrival>,
    ) -> Self {
        let mut actors: Vec<ManActor> = (0..n_nodes)
            .map(|i| ManActor::Node(ManualNode::new(schema, NodeId(i), cfg.clone())))
            .collect();
        actors.push(ManActor::Client(ClientActor::new(arrivals)));
        ManualCluster {
            sim: Simulation::new(actors, sim),
            n_nodes,
            cfg,
        }
    }

    /// Run all events up to `until` (the epoch timers re-arm forever, so
    /// quiescence never happens; use a horizon).
    pub fn run_until(&mut self, until: SimTime) {
        self.sim.run_until(until)
    }

    /// Transaction records.
    pub fn records(&self) -> &[TxnRecord] {
        match &self.sim.actors()[self.n_nodes as usize] {
            ManActor::Client(c) => c.records(),
            // lint-allow(panic-hygiene): actor slots are fixed at
            // construction (0..n nodes, n client); a mismatch is a
            // harness-construction defect, not a reachable message state.
            _ => unreachable!(),
        }
    }

    /// Kernel statistics.
    pub fn sim_stats(&self) -> &SimStats {
        self.sim.stats()
    }

    /// A node (read access).
    pub fn node(&self, i: u16) -> &ManualNode {
        match &self.sim.actors()[i as usize] {
            ManActor::Node(n) => n,
            // lint-allow(panic-hygiene): slots 0..n hold nodes by
            // construction; an out-of-range index is a test/bench bug.
            _ => unreachable!(),
        }
    }

    /// A node's storage statistics.
    pub fn store_stats(&self, i: u16) -> &StoreStats {
        self.node(i).store().stats()
    }

    /// The *nominal* version timeline: version `v` closes when the period
    /// that accumulated it ends (no coordinator exists to record actual
    /// instants, so staleness is computed against the schedule).
    pub fn nominal_timeline(&self) -> VersionTimeline {
        let mut t = VersionTimeline::new();
        let period = self.cfg.period.as_micros();
        let switches = (0..self.n_nodes)
            .map(|i| self.node(i).stats().update_switches)
            .max()
            .unwrap_or(0);
        for k in 1..=switches {
            // Version k accumulated during [(k-1)·period, k·period); it
            // closed at update switch k, i.e. nominally at k·period.
            t.record_closed(VersionNo(k as u32), SimTime(period * k));
        }
        t
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Aggregate lost updates (data loss!) across nodes.
    pub fn lost_updates(&self) -> u64 {
        (0..self.n_nodes)
            .map(|i| self.node(i).stats().lost_updates)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_analysis::Auditor;
    use threev_model::{Key, KeyDecl, TxnPlan, UpdateOp};

    fn schema() -> Schema {
        Schema::new(vec![
            KeyDecl::journal(Key(1), NodeId(0)),
            KeyDecl::journal(Key(2), NodeId(1)),
        ])
    }

    fn visit() -> TxnPlan {
        TxnPlan::commuting(
            SubtxnPlan::new(NodeId(0))
                .update(Key(1), UpdateOp::Append { amount: 5, tag: 1 })
                .child(
                    SubtxnPlan::new(NodeId(1))
                        .update(Key(2), UpdateOp::Append { amount: 5, tag: 1 }),
                ),
        )
    }

    fn inquiry() -> TxnPlan {
        TxnPlan::read_only(
            SubtxnPlan::new(NodeId(0))
                .read(Key(1))
                .child(SubtxnPlan::new(NodeId(1)).read(Key(2))),
        )
    }

    #[test]
    fn epochs_rotate_and_reads_lag() {
        let cfg = ManualConfig {
            period: SimDuration::from_millis(50),
            read_delay: SimDuration::from_millis(10),
            jitter: SimDuration::from_micros(500),
        };
        let mut arrivals = Vec::new();
        for i in 0..20u64 {
            arrivals.push(Arrival::at(SimTime(i * 10_000), visit()));
        }
        arrivals.push(Arrival::at(SimTime(190_000), inquiry()));
        let mut cluster = ManualCluster::new(&schema(), 2, SimConfig::seeded(17), cfg, arrivals);
        cluster.run_until(SimTime(400_000));
        let node = cluster.node(0);
        assert!(node.stats().update_switches >= 6);
        assert!(node.stats().read_switches >= 5);
        // The read at t=190ms reads version 2 (periods 0..50, 50..100 done;
        // read switch lags by 10ms, so vr was 3 at most). It must lag vu.
        let read = cluster
            .records()
            .iter()
            .find(|r| r.kind == TxnKind::ReadOnly)
            .unwrap()
            .clone();
        let seen_version = read.reads[0].version.unwrap();
        assert!(seen_version < VersionNo(5), "reads lag the update version");
    }

    #[test]
    fn tight_delay_loses_or_tears_updates() {
        // A hostile setup: spiky latency + zero read delay. Stragglers land
        // after the switchover; either the audit tears or updates are lost.
        let cfg = ManualConfig {
            period: SimDuration::from_millis(10),
            read_delay: SimDuration::ZERO,
            jitter: SimDuration::from_millis(3),
        };
        let sim = SimConfig {
            latency: threev_sim::LatencyModel::Spiky {
                base: SimDuration::from_micros(400),
                spike_ppm: 120_000,
                spike_factor: 40, // 16ms spikes > period
            },
            ..SimConfig::seeded(23)
        };
        let mut arrivals = Vec::new();
        for i in 0..400u64 {
            arrivals.push(Arrival::at(SimTime(i * 500), visit()));
            if i % 4 == 0 {
                arrivals.push(Arrival::at(SimTime(i * 500 + 250), inquiry()));
            }
        }
        let mut cluster = ManualCluster::new(&schema(), 2, sim, cfg, arrivals);
        cluster.run_until(SimTime(400_000));
        let report = Auditor::new(cluster.records()).check();
        let broken = report.total_violations() + cluster.lost_updates();
        assert!(
            broken > 0,
            "expected torn reads or lost updates, report={report:?}, lost={}",
            cluster.lost_updates()
        );
    }
}
