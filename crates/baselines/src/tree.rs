//! Shared subtree-completion bookkeeping for the baseline engines.
//!
//! Mirrors the completion-notice tree of the 3V node: each executed
//! subtransaction tracks its pending children; when a subtree drains, the
//! parent is notified, and the root closes out the transaction.

use std::collections::{BTreeMap, BTreeSet};

use threev_model::{NodeId, SubtxnId, TxnId};

/// Tracker for one executed subtransaction.
#[derive(Debug)]
pub(crate) struct SubTracker {
    pub txn: TxnId,
    /// `(parent node, parent subtransaction)`; `None` at the root.
    pub parent: Option<(NodeId, SubtxnId)>,
    pub client: NodeId,
    pub pending_children: u32,
    pub participants: BTreeSet<NodeId>,
    pub clean: bool,
}

/// Per-node tracker table plus the spawn-id counter.
#[derive(Debug, Default)]
pub(crate) struct TrackerTable {
    trackers: BTreeMap<SubtxnId, SubTracker>,
    spawn_seq: u64,
}

/// Outcome of draining a notice: either propagate to a parent or the root
/// subtree completed.
pub(crate) enum Drained {
    Parent {
        txn: TxnId,
        node: NodeId,
        parent_sub: SubtxnId,
        participants: BTreeSet<NodeId>,
        clean: bool,
    },
    Root(SubTracker, BTreeSet<NodeId>),
    /// Still waiting on children.
    Pending,
}

impl TrackerTable {
    pub fn new_sub_id(&mut self, me: NodeId) -> SubtxnId {
        let id = SubtxnId::new(me, self.spawn_seq);
        self.spawn_seq += 1;
        id
    }

    pub fn insert(&mut self, id: SubtxnId, tracker: SubTracker) {
        self.trackers.insert(id, tracker);
    }

    pub fn is_empty(&self) -> bool {
        self.trackers.is_empty()
    }

    /// Apply a child-completion notice; if the tracker drains, remove it
    /// and describe what to do next.
    pub fn child_done(
        &mut self,
        me: NodeId,
        parent_sub: SubtxnId,
        participants: Vec<NodeId>,
        clean: bool,
    ) -> Drained {
        let Some(tracker) = self.trackers.get_mut(&parent_sub) else {
            return Drained::Pending;
        };
        tracker.participants.extend(participants);
        tracker.clean &= clean;
        tracker.pending_children = tracker.pending_children.saturating_sub(1);
        if tracker.pending_children > 0 {
            return Drained::Pending;
        }
        self.finish(me, parent_sub)
    }

    /// Close out a tracker with no pending children. A missing tracker
    /// (duplicate completion notice) resolves to `Pending`: the first
    /// notice already drained it.
    pub fn finish(&mut self, me: NodeId, id: SubtxnId) -> Drained {
        let Some(mut tracker) = self.trackers.remove(&id) else {
            return Drained::Pending;
        };
        let mut participants = std::mem::take(&mut tracker.participants);
        participants.insert(me);
        match tracker.parent {
            Some((node, parent_sub)) => Drained::Parent {
                txn: tracker.txn,
                node,
                parent_sub,
                participants,
                clean: tracker.clean,
            },
            None => Drained::Root(tracker, participants),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(parent: Option<(NodeId, SubtxnId)>, children: u32) -> SubTracker {
        SubTracker {
            txn: TxnId::new(1, NodeId(0)),
            parent,
            client: NodeId(9),
            pending_children: children,
            participants: BTreeSet::new(),
            clean: true,
        }
    }

    #[test]
    fn root_completes_after_children() {
        let me = NodeId(0);
        let mut t = TrackerTable::default();
        let root_id = t.new_sub_id(me);
        t.insert(root_id, tracker(None, 2));
        assert!(matches!(
            t.child_done(me, root_id, vec![NodeId(1)], true),
            Drained::Pending
        ));
        match t.child_done(me, root_id, vec![NodeId(2)], false) {
            Drained::Root(tr, participants) => {
                assert!(!tr.clean);
                assert_eq!(participants.len(), 3); // me + n1 + n2
            }
            _ => panic!("expected root completion"),
        }
        assert!(t.is_empty());
    }

    #[test]
    fn leaf_propagates_to_parent() {
        let me = NodeId(1);
        let mut t = TrackerTable::default();
        let id = t.new_sub_id(me);
        let parent_sub = SubtxnId::new(NodeId(0), 7);
        t.insert(id, tracker(Some((NodeId(0), parent_sub)), 0));
        match t.finish(me, id) {
            Drained::Parent {
                node,
                parent_sub: ps,
                participants,
                clean,
                ..
            } => {
                assert_eq!(node, NodeId(0));
                assert_eq!(ps, parent_sub);
                assert!(clean);
                assert_eq!(participants.into_iter().collect::<Vec<_>>(), vec![me]);
            }
            _ => panic!("expected parent propagation"),
        }
    }

    #[test]
    fn unknown_notice_ignored() {
        let mut t = TrackerTable::default();
        assert!(matches!(
            t.child_done(NodeId(0), SubtxnId::new(NodeId(0), 99), vec![], true),
            Drained::Pending
        ));
    }
}
