//! Baseline protocols the paper compares against (§1, "four options"):
//!
//! * [`two_pc`] — **Global Synchronization**: every global transaction
//!   (reads included) runs strict two-phase locking with wait-die and
//!   two-phase commitment. Globally serializable, but user transactions
//!   wait on locks and commit round-trips — the cost 3V eliminates;
//! * [`no_coord`] — **No Coordination**: subtransactions execute the moment
//!   they arrive, no versions, no locks, no commit protocol. Maximum
//!   throughput, but reads observe partially-applied transactions (the
//!   "partial charges on a bill" anomaly, measured by experiment X5);
//! * [`manual`] — **Manual Versioning**: nodes switch to a fresh version on
//!   a fixed local period and expose the previous version to reads after a
//!   conservative delay, with *no coordination of the switchover*. Late
//!   subtransactions miss the copied forward version, so correctness is
//!   only probabilistic — and reads run a full period behind.
//!
//! All three engines are driven by the same client actor as the 3V engine
//! (via [`threev_core::msg::ProtocolMsg`]), so records, audits, and
//! summaries are directly comparable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod manual;
pub mod no_coord;
pub mod two_pc;

mod tree;

pub use manual::{ManualCluster, ManualConfig};
pub use no_coord::NoCoordCluster;
pub use two_pc::{TwoPcCluster, TwoPcConfig};
