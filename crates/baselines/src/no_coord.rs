//! The **No Coordination** baseline (paper §1, option 2).
//!
//! "Global transactions can run without global synchronization between
//! nodes. This way, there is no performance loss due to coordination, but
//! correctness is sacrificed."
//!
//! Subtransactions execute the instant they arrive against a single,
//! unversioned copy of the data. Reads therefore observe partially-applied
//! update transactions — the `fw11(x1); r21(x1); r22(x2); w12(x2)g`
//! schedule the paper calls out, where "a patient enquiring about his
//! balance due will see only partial charges". Experiment X5 counts those
//! anomalies with the auditor; this engine is also the throughput
//! upper bound every coordinated scheme is measured against.

use threev_analysis::{ReadObservation, TxnRecord};
use threev_model::{NodeId, OpStep, Schema, SubtxnId, SubtxnPlan, TxnId, TxnKind, VersionNo};
use threev_sim::{Actor, Ctx, QuiesceOutcome, SimConfig, SimStats, SimTime, Simulation};
use threev_storage::{Store, StoreStats};

use threev_core::client::{Arrival, ClientActor};
use threev_core::msg::{ClientEvent, ProtocolMsg};

use crate::tree::{Drained, SubTracker, TrackerTable};

/// Messages of the no-coordination engine.
#[derive(Clone, Debug)]
pub enum NcdMsg {
    /// Client submission.
    Submit {
        /// Transaction id.
        txn: TxnId,
        /// Plan root.
        plan: SubtxnPlan,
        /// Reporting actor.
        client: NodeId,
    },
    /// Child subtransaction shipment.
    Subtxn {
        /// Transaction id.
        txn: TxnId,
        /// Plan subtree.
        plan: SubtxnPlan,
        /// Parent subtransaction.
        parent_sub: SubtxnId,
        /// Reporting actor.
        client: NodeId,
    },
    /// Completion notice up the tree.
    SubtreeDone {
        /// Transaction id.
        txn: TxnId,
        /// Parent subtransaction notified.
        parent_sub: SubtxnId,
        /// Executing nodes (unused here, kept for parity).
        participants: Vec<NodeId>,
    },
    /// Node → client: transaction finished.
    TxnDone {
        /// Transaction id.
        txn: TxnId,
    },
    /// Node → client: read observations.
    ReadResults {
        /// Transaction id.
        txn: TxnId,
        /// Observations.
        reads: Vec<ReadObservation>,
    },
}

impl ProtocolMsg for NcdMsg {
    fn submit(
        txn: TxnId,
        _kind: TxnKind,
        plan: SubtxnPlan,
        client: NodeId,
        _fail_node: Option<NodeId>,
    ) -> Self {
        NcdMsg::Submit { txn, plan, client }
    }

    fn client_event(self) -> Option<ClientEvent> {
        match self {
            NcdMsg::TxnDone { txn } => Some(ClientEvent::Done {
                txn,
                version: None,
                committed: true,
            }),
            NcdMsg::ReadResults { txn, reads } => Some(ClientEvent::Reads { txn, reads }),
            _ => None,
        }
    }
}

/// A no-coordination node: one unversioned store, immediate execution.
pub struct NoCoordNode {
    me: NodeId,
    store: Store,
    trackers: TrackerTable,
}

impl NoCoordNode {
    /// Build from the schema.
    pub fn new(schema: &Schema, me: NodeId) -> Self {
        NoCoordNode {
            me,
            store: Store::from_schema(schema, me),
            trackers: TrackerTable::default(),
        }
    }

    /// The node's store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    fn execute(
        &mut self,
        ctx: &mut Ctx<'_, NcdMsg>,
        txn: TxnId,
        plan: SubtxnPlan,
        parent: Option<(NodeId, SubtxnId)>,
        client: NodeId,
    ) {
        let mut reads = Vec::new();
        for step in &plan.steps {
            match step {
                OpStep::Read(key) => {
                    // A read can only fail on a plan that references a key
                    // outside the schema: drop the step rather than take
                    // the node down.
                    let Ok((_, value)) = self.store.read_visible(*key, VersionNo::ZERO) else {
                        continue;
                    };
                    reads.push(ReadObservation {
                        key: *key,
                        version: None,
                        value,
                    });
                }
                OpStep::Update(key, op) => {
                    // Malformed plan (unknown key / type mismatch): drop
                    // the step rather than take the node down.
                    let _ = self.store.update(*key, VersionNo::ZERO, *op, txn, None);
                }
            }
        }
        let sub_id = self.trackers.new_sub_id(self.me);
        for child in &plan.children {
            ctx.send_tagged(
                child.node,
                NcdMsg::Subtxn {
                    txn,
                    plan: child.clone(),
                    parent_sub: sub_id,
                    client,
                },
                "subtxn",
            );
        }
        if !reads.is_empty() {
            ctx.send_tagged(client, NcdMsg::ReadResults { txn, reads }, "client");
        }
        self.trackers.insert(
            sub_id,
            SubTracker {
                txn,
                parent,
                client,
                pending_children: plan.children.len() as u32,
                participants: Default::default(),
                clean: true,
            },
        );
        if plan.children.is_empty() {
            let drained = self.trackers.finish(self.me, sub_id);
            self.dispatch_drained(ctx, drained);
        }
    }

    fn dispatch_drained(&mut self, ctx: &mut Ctx<'_, NcdMsg>, drained: Drained) {
        match drained {
            Drained::Parent {
                txn,
                node,
                parent_sub,
                participants,
                ..
            } => {
                ctx.send_tagged(
                    node,
                    NcdMsg::SubtreeDone {
                        txn,
                        parent_sub,
                        participants: participants.into_iter().collect(),
                    },
                    "notice",
                );
            }
            Drained::Root(tracker, _) => {
                ctx.send_tagged(
                    tracker.client,
                    NcdMsg::TxnDone { txn: tracker.txn },
                    "client",
                );
            }
            Drained::Pending => {}
        }
    }
}

impl Actor for NoCoordNode {
    type Msg = NcdMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, NcdMsg>, from: NodeId, msg: NcdMsg) {
        match msg {
            NcdMsg::Submit { txn, plan, client } => self.execute(ctx, txn, plan, None, client),
            NcdMsg::Subtxn {
                txn,
                plan,
                parent_sub,
                client,
            } => self.execute(ctx, txn, plan, Some((from, parent_sub)), client),
            NcdMsg::SubtreeDone {
                parent_sub,
                participants,
                ..
            } => {
                let drained = self
                    .trackers
                    .child_done(self.me, parent_sub, participants, true);
                self.dispatch_drained(ctx, drained);
            }
            NcdMsg::TxnDone { .. } | NcdMsg::ReadResults { .. } => {}
        }
    }
}

/// One actor of a no-coordination cluster.
#[allow(clippy::large_enum_variant)]
pub enum NcdActor {
    /// A database node.
    Node(NoCoordNode),
    /// The workload driver.
    Client(ClientActor<NcdMsg>),
}

impl Actor for NcdActor {
    type Msg = NcdMsg;
    fn on_start(&mut self, ctx: &mut Ctx<'_, NcdMsg>) {
        if let NcdActor::Client(c) = self {
            c.on_start(ctx)
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, NcdMsg>, from: NodeId, msg: NcdMsg) {
        match self {
            NcdActor::Node(n) => n.on_message(ctx, from, msg),
            NcdActor::Client(c) => c.on_message(ctx, from, msg),
        }
    }
    fn on_batch(&mut self, ctx: &mut Ctx<'_, NcdMsg>, batch: &mut Vec<(NodeId, NcdMsg)>) {
        match self {
            NcdActor::Node(n) => n.on_batch(ctx, batch),
            NcdActor::Client(c) => c.on_batch(ctx, batch),
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, NcdMsg>, token: u64) {
        if let NcdActor::Client(c) = self {
            c.on_timer(ctx, token)
        }
    }
}

/// A simulated no-coordination cluster (nodes `0..n`, client `n`).
pub struct NoCoordCluster {
    sim: Simulation<NcdActor>,
    n_nodes: u16,
}

impl NoCoordCluster {
    /// Build over `schema` with the given arrivals.
    pub fn new(schema: &Schema, n_nodes: u16, sim: SimConfig, arrivals: Vec<Arrival>) -> Self {
        let mut actors: Vec<NcdActor> = (0..n_nodes)
            .map(|i| NcdActor::Node(NoCoordNode::new(schema, NodeId(i))))
            .collect();
        actors.push(NcdActor::Client(ClientActor::new(arrivals)));
        NoCoordCluster {
            sim: Simulation::new(actors, sim),
            n_nodes,
        }
    }

    /// Run until quiescent or capped.
    pub fn run(&mut self, cap: SimTime) -> QuiesceOutcome {
        self.sim.run_to_quiescence(cap)
    }

    /// Transaction records.
    pub fn records(&self) -> &[TxnRecord] {
        match &self.sim.actors()[self.n_nodes as usize] {
            NcdActor::Client(c) => c.records(),
            // lint-allow(panic-hygiene): actor slots are fixed at
            // construction (0..n nodes, n client); a mismatch is a
            // harness-construction defect, not a reachable message state.
            _ => unreachable!(),
        }
    }

    /// Kernel statistics.
    pub fn sim_stats(&self) -> &SimStats {
        self.sim.stats()
    }

    /// A node's storage statistics.
    pub fn store_stats(&self, i: u16) -> &StoreStats {
        match &self.sim.actors()[i as usize] {
            NcdActor::Node(n) => n.store().stats(),
            // lint-allow(panic-hygiene): slots 0..n hold nodes by
            // construction; an out-of-range index is a test/bench bug.
            _ => unreachable!(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_analysis::{Auditor, TxnStatus};
    use threev_model::{Key, KeyDecl, TxnPlan, UpdateOp};

    fn schema() -> Schema {
        Schema::new(vec![
            KeyDecl::journal(Key(1), NodeId(0)),
            KeyDecl::journal(Key(2), NodeId(1)),
        ])
    }

    fn visit() -> TxnPlan {
        TxnPlan::commuting(
            SubtxnPlan::new(NodeId(0))
                .update(Key(1), UpdateOp::Append { amount: 5, tag: 1 })
                .child(
                    SubtxnPlan::new(NodeId(1))
                        .update(Key(2), UpdateOp::Append { amount: 5, tag: 1 }),
                ),
        )
    }

    fn inquiry() -> TxnPlan {
        TxnPlan::read_only(
            SubtxnPlan::new(NodeId(0))
                .read(Key(1))
                .child(SubtxnPlan::new(NodeId(1)).read(Key(2))),
        )
    }

    #[test]
    fn executes_and_completes() {
        let arrivals = vec![
            Arrival::at(SimTime(1_000), visit()),
            Arrival::at(SimTime(100_000), inquiry()),
        ];
        let mut cluster = NoCoordCluster::new(&schema(), 2, SimConfig::seeded(3), arrivals);
        let out = cluster.run(SimTime::MAX);
        assert!(matches!(out, QuiesceOutcome::Quiescent(_)));
        let records = cluster.records();
        assert!(records.iter().all(|r| r.status == TxnStatus::Committed));
        // The late read saw the full visit: clean audit for THIS schedule.
        let report = Auditor::new(records).check();
        assert!(report.clean(), "{report:?}");
    }

    #[test]
    fn interleaved_reads_observe_partial_updates() {
        // Many updates and reads racing: with jittery latency, some read
        // must catch a visit half-applied — the paper's anomaly.
        let mut arrivals = Vec::new();
        for i in 0..300u64 {
            arrivals.push(Arrival::at(SimTime(i * 300), visit()));
            arrivals.push(Arrival::at(SimTime(i * 300 + 40), inquiry()));
        }
        let mut cluster = NoCoordCluster::new(&schema(), 2, SimConfig::seeded(7), arrivals);
        cluster.run(SimTime::MAX);
        let report = Auditor::new(cluster.records()).check();
        assert!(
            report.atomicity_violations > 0,
            "expected partial reads, got {report:?}"
        );
    }
}
